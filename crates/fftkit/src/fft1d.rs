//! 1-D complex FFT with precomputed plans.
//!
//! * Power-of-two lengths: iterative radix-2 Cooley–Tukey reading bit-reversal
//!   and per-stage twiddle tables built once at plan time (the workhorse —
//!   plane-wave grids are chosen as powers of two, as on the Cori runs where
//!   `N_r = 104³` was the FFT-friendly grid for Si₁₀₀₀; we snap to powers of
//!   two instead). The tables replace the old `w *= wlen` recurrence, whose
//!   rounding error grows with line length.
//! * Arbitrary lengths: Bluestein's chirp-z algorithm with the chirp sequence
//!   and both convolution-kernel spectra cached in the plan, so a transform
//!   runs no trig at all. This keeps the library usable for the odd grid
//!   dimensions produced by non-cubic cells.
//!
//! [`Plan1d`] is the planned engine; the free functions [`fft`]/[`ifft`]
//! remain as conveniences backed by a process-wide plan cache keyed on length.

use crate::complex::Complex;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A reusable 1-D FFT plan: all tables precomputed, no trig per transform.
#[derive(Debug)]
pub struct Plan1d {
    n: usize,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    /// `n <= 1`: the transform is the identity.
    Trivial,
    /// Power-of-two Cooley–Tukey.
    Radix2 {
        /// Bit-reversed index of every position (u32: lines are ≪ 4G long).
        bitrev: Vec<u32>,
        /// Forward twiddles `e^{-2πik/len}`, stage-major: the stage with
        /// butterfly span `len` owns `len/2` consecutive entries at offset
        /// `len/2 - 1`. Inverse transforms conjugate on the fly.
        twiddles: Vec<Complex>,
    },
    /// Bluestein chirp-z for arbitrary `n` via a power-of-two convolution.
    Bluestein {
        /// Forward chirp `e^{-iπ j²/n}` (j² taken mod 2n); inverse is conj.
        chirp: Vec<Complex>,
        /// FFT_m of the forward convolution kernel `b[j] = conj(chirp[j])`.
        bspec_fwd: Vec<Complex>,
        /// FFT_m of the inverse convolution kernel `b[j] = chirp[j]`.
        bspec_inv: Vec<Complex>,
        /// Inner power-of-two plan of length `m ≥ 2n−1`.
        inner: Box<Plan1d>,
    },
}

impl Plan1d {
    pub fn new(n: usize) -> Self {
        let kind = if n <= 1 {
            Kind::Trivial
        } else if n.is_power_of_two() {
            let (bitrev, twiddles) = radix2_tables(n);
            Kind::Radix2 { bitrev, twiddles }
        } else {
            bluestein_plan(n)
        };
        Plan1d { n, kind }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Scratch length a transform needs (`m` for Bluestein, 0 otherwise).
    pub fn scratch_len(&self) -> usize {
        match &self.kind {
            Kind::Bluestein { inner, .. } => inner.n,
            _ => 0,
        }
    }

    /// Forward DFT in place (no normalization). `scratch` is grown on demand
    /// and only touched on Bluestein lengths — pass the same `Vec` across
    /// calls to keep batched transforms allocation-free.
    pub fn forward(&self, x: &mut [Complex], scratch: &mut Vec<Complex>) {
        debug_assert_eq!(x.len(), self.n);
        self.execute(x, false, scratch);
    }

    /// Inverse DFT in place, including the `1/n` normalization.
    pub fn inverse(&self, x: &mut [Complex], scratch: &mut Vec<Complex>) {
        debug_assert_eq!(x.len(), self.n);
        self.execute(x, true, scratch);
        let inv = 1.0 / self.n.max(1) as f64;
        for v in x.iter_mut() {
            *v = v.scale(inv);
        }
    }

    fn execute(&self, x: &mut [Complex], inverse: bool, scratch: &mut Vec<Complex>) {
        match &self.kind {
            Kind::Trivial => {}
            Kind::Radix2 { bitrev, twiddles } => radix2_planned(x, bitrev, twiddles, inverse),
            Kind::Bluestein { chirp, bspec_fwd, bspec_inv, inner } => {
                bluestein_planned(x, chirp, bspec_fwd, bspec_inv, inner, inverse, scratch)
            }
        }
    }
}

/// Bit-reversal permutation and stage-major twiddle tables for length `n`.
fn radix2_tables(n: usize) -> (Vec<u32>, Vec<Complex>) {
    debug_assert!(n.is_power_of_two() && n >= 2);
    let mut bitrev = vec![0u32; n];
    let mut j = 0usize;
    for slot in bitrev.iter_mut().skip(1) {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        *slot = j as u32;
    }
    let mut twiddles = Vec::with_capacity(n - 1);
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        for k in 0..half {
            let ang = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
            twiddles.push(Complex::cis(ang));
        }
        len <<= 1;
    }
    (bitrev, twiddles)
}

/// Iterative radix-2 butterflies reading the precomputed tables.
fn radix2_planned(x: &mut [Complex], bitrev: &[u32], twiddles: &[Complex], inverse: bool) {
    let n = x.len();
    debug_assert_eq!(bitrev.len(), n);
    for (i, &rev) in bitrev.iter().enumerate().skip(1) {
        let j = rev as usize;
        if i < j {
            x.swap(i, j);
        }
    }
    let mut len = 2;
    let mut toff = 0;
    while len <= n {
        let half = len / 2;
        let stage = &twiddles[toff..toff + half];
        for block in x.chunks_exact_mut(len) {
            let (lo, hi) = block.split_at_mut(half);
            if inverse {
                for ((u, v), w) in lo.iter_mut().zip(hi.iter_mut()).zip(stage.iter()) {
                    let t = *v * w.conj();
                    let s = *u;
                    *u = s + t;
                    *v = s - t;
                }
            } else {
                for ((u, v), w) in lo.iter_mut().zip(hi.iter_mut()).zip(stage.iter()) {
                    let t = *v * *w;
                    let s = *u;
                    *u = s + t;
                    *v = s - t;
                }
            }
        }
        toff += half;
        len <<= 1;
    }
}

/// Build the cached Bluestein tables for length `n`.
fn bluestein_plan(n: usize) -> Kind {
    let m = (2 * n - 1).next_power_of_two();
    let inner = Box::new(Plan1d::new(m));
    // chirp[j] = e^{-iπ j²/n}; j² mod 2n keeps the phase argument exact for
    // large j (e^{-iπ (j² + 2n t)/n} = e^{-iπ j²/n}).
    let chirp: Vec<Complex> = (0..n)
        .map(|j| {
            let jj = (j * j) % (2 * n);
            Complex::cis(-std::f64::consts::PI * jj as f64 / n as f64)
        })
        .collect();
    let mut scratch = Vec::new();
    let mut spectrum_of = |b0: &dyn Fn(usize) -> Complex| -> Vec<Complex> {
        let mut b = vec![Complex::ZERO; m];
        b[0] = b0(0);
        for j in 1..n {
            b[j] = b0(j);
            b[m - j] = b0(j);
        }
        inner.forward(&mut b, &mut scratch);
        b
    };
    let bspec_fwd = spectrum_of(&|j| chirp[j].conj());
    let bspec_inv = spectrum_of(&|j| chirp[j]);
    Kind::Bluestein { chirp, bspec_fwd, bspec_inv, inner }
}

/// Chirp-z execution against the cached tables (no normalization).
fn bluestein_planned(
    x: &mut [Complex],
    chirp: &[Complex],
    bspec_fwd: &[Complex],
    bspec_inv: &[Complex],
    inner: &Plan1d,
    inverse: bool,
    scratch: &mut Vec<Complex>,
) {
    let m = inner.len();
    scratch.clear();
    scratch.resize(m, Complex::ZERO);
    // Avoid aliasing scratch through the nested inner transform: the inner
    // plan is power-of-two, so its scratch demand is zero.
    let mut no_scratch = Vec::new();
    let bspec = if inverse { bspec_inv } else { bspec_fwd };
    if inverse {
        for (s, (&xi, &c)) in scratch.iter_mut().zip(x.iter().zip(chirp.iter())) {
            *s = xi * c.conj();
        }
    } else {
        for (s, (&xi, &c)) in scratch.iter_mut().zip(x.iter().zip(chirp.iter())) {
            *s = xi * c;
        }
    }
    inner.forward(scratch, &mut no_scratch);
    for (s, b) in scratch.iter_mut().zip(bspec.iter()) {
        *s *= *b;
    }
    // Inverse convolution without normalization; fold 1/m into the unchirp.
    inner.execute(scratch, true, &mut no_scratch);
    let minv = 1.0 / m as f64;
    if inverse {
        for (xi, (&s, &c)) in x.iter_mut().zip(scratch.iter().zip(chirp.iter())) {
            *xi = s.scale(minv) * c.conj();
        }
    } else {
        for (xi, (&s, &c)) in x.iter_mut().zip(scratch.iter().zip(chirp.iter())) {
            *xi = s.scale(minv) * c;
        }
    }
}

/// Process-wide plan cache backing the free functions: one `Plan1d` per
/// length, shared by reference.
fn cached_plan(n: usize) -> Arc<Plan1d> {
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<Plan1d>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = cache.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(p) = guard.get(&n) {
        obskit::add_fft_plan_hit();
        return p.clone();
    }
    obskit::add_fft_plan_miss();
    guard.entry(n).or_insert_with(|| Arc::new(Plan1d::new(n))).clone()
}

/// Shared plan for length `n` from the process-wide cache.
pub fn plan(n: usize) -> Arc<Plan1d> {
    cached_plan(n)
}

/// Forward DFT: `X[k] = Σ_j x[j] e^{-2πi jk/n}` (no normalization).
pub fn fft(x: &[Complex]) -> Vec<Complex> {
    let mut buf = x.to_vec();
    fft_inplace(&mut buf);
    buf
}

/// Inverse DFT: `x[j] = (1/n) Σ_k X[k] e^{+2πi jk/n}`.
pub fn ifft(x: &[Complex]) -> Vec<Complex> {
    let mut buf = x.to_vec();
    ifft_inplace(&mut buf);
    buf
}

/// In-place forward DFT.
pub fn fft_inplace(x: &mut [Complex]) {
    if x.len() <= 1 {
        return;
    }
    let plan = cached_plan(x.len());
    let mut scratch = Vec::new();
    plan.forward(x, &mut scratch);
}

/// In-place inverse DFT (includes the `1/n` normalization).
pub fn ifft_inplace(x: &mut [Complex]) {
    if x.len() <= 1 {
        return;
    }
    let plan = cached_plan(x.len());
    let mut scratch = Vec::new();
    plan.inverse(x, &mut scratch);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex], inverse: bool) -> Vec<Complex> {
        let n = x.len();
        let sign = if inverse { 1.0 } else { -1.0 };
        let mut out = vec![Complex::ZERO; n];
        for (k, o) in out.iter_mut().enumerate() {
            for (j, &xi) in x.iter().enumerate() {
                let ang = sign * 2.0 * std::f64::consts::PI * ((j * k) % n) as f64 / n as f64;
                *o += xi * Complex::cis(ang);
            }
        }
        if inverse {
            for o in &mut out {
                *o = o.scale(1.0 / n as f64);
            }
        }
        out
    }

    fn rand_signal(n: usize, seed: u64) -> Vec<Complex> {
        // Simple xorshift so the test needs no RNG dependency wiring.
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        (0..n).map(|_| Complex::new(next(), next())).collect()
    }

    fn close(a: &[Complex], b: &[Complex], tol: f64) -> bool {
        a.iter().zip(b.iter()).all(|(x, y)| (*x - *y).abs() < tol)
    }

    #[test]
    fn matches_naive_dft_pow2() {
        for &n in &[1usize, 2, 4, 8, 16, 64] {
            let x = rand_signal(n, 42 + n as u64);
            assert!(close(&fft(&x), &naive_dft(&x, false), 1e-10), "n={n}");
        }
    }

    #[test]
    fn matches_naive_dft_nonpow2() {
        for &n in &[3usize, 5, 6, 7, 12, 15, 27, 100] {
            let x = rand_signal(n, 7 + n as u64);
            assert!(close(&fft(&x), &naive_dft(&x, false), 1e-9), "n={n}");
        }
    }

    #[test]
    fn long_line_accuracy_vs_naive_dft() {
        // The old `w *= wlen` twiddle recurrence drifted measurably by
        // n = 4096; the table-driven plan must stay at DFT-roundoff level
        // (tolerance ~1e-12·n, i.e. ≈4e-9 absolute here).
        let n = 4096;
        let x = rand_signal(n, 2024);
        let tol = 1e-12 * n as f64;
        let planned = fft(&x);
        let naive = naive_dft(&x, false);
        let worst = planned
            .iter()
            .zip(naive.iter())
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < tol, "worst deviation {worst:.3e} exceeds {tol:.3e}");
    }

    #[test]
    fn plan_reuse_matches_free_functions() {
        for &n in &[32usize, 45] {
            let p = Plan1d::new(n);
            let mut scratch = Vec::new();
            let x = rand_signal(n, 3 * n as u64);
            let mut y = x.clone();
            p.forward(&mut y, &mut scratch);
            assert!(close(&y, &fft(&x), 1e-11), "forward n={n}");
            p.inverse(&mut y, &mut scratch);
            assert!(close(&y, &x, 1e-10), "roundtrip n={n}");
        }
    }

    #[test]
    fn roundtrip_identity() {
        for &n in &[8usize, 13, 32, 45, 128] {
            let x = rand_signal(n, n as u64);
            let y = ifft(&fft(&x));
            assert!(close(&x, &y, 1e-10), "n={n}");
        }
    }

    #[test]
    fn delta_transforms_to_constant() {
        let mut x = vec![Complex::ZERO; 16];
        x[0] = Complex::ONE;
        let y = fft(&x);
        for v in y {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        for &n in &[16usize, 21] {
            let x = rand_signal(n, 99);
            let y = fft(&x);
            let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
            let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
            assert!((ex - ey).abs() < 1e-9 * ex.max(1.0), "n={n}");
        }
    }

    #[test]
    fn pure_tone_single_bin() {
        let n = 32;
        let k0 = 5;
        let x: Vec<Complex> = (0..n)
            .map(|j| Complex::cis(2.0 * std::f64::consts::PI * (k0 * j) as f64 / n as f64))
            .collect();
        let y = fft(&x);
        for (k, v) in y.iter().enumerate() {
            if k == k0 {
                assert!((v.re - n as f64).abs() < 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn linearity() {
        let n = 24;
        let x = rand_signal(n, 1);
        let y = rand_signal(n, 2);
        let sum: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| *a + b.scale(2.5)).collect();
        let fs = fft(&sum);
        let fx = fft(&x);
        let fy = fft(&y);
        let expect: Vec<Complex> = fx.iter().zip(&fy).map(|(a, b)| *a + b.scale(2.5)).collect();
        assert!(close(&fs, &expect, 1e-9));
    }
}
