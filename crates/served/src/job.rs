//! Jobs, handles, and the hashing that drives batching and result caching.

use lrtddft::{CasidaProblem, SolveOptions, Solver, StageTimings};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tenant identifier. Tenants are accounting + isolation domains: quotas,
/// trace tags, and fault scopes are all keyed by this.
pub type TenantId = u64;

/// One unit of work: solve `problem` with `solver`'s options on behalf of
/// `tenant`. Construct via [`JobSpec::new`] and the with-methods.
#[derive(Clone)]
pub struct JobSpec {
    pub tenant: TenantId,
    pub problem: Arc<CasidaProblem>,
    pub solver: Solver,
    /// Optional fault plan, armed only around this job's execution window
    /// on every rank of the executing group — never visible to co-scheduled
    /// tenants. Jobs carrying a plan are never batched with others and
    /// bypass the result cache entirely.
    pub fault: Option<faultkit::Handle>,
    /// Optional deadline, measured from submission. An expired job is
    /// completed as [`JobOutcome::DeadlineExceeded`] at claim time instead
    /// of occupying a solver group; a job finishing after its deadline is
    /// still delivered, marked [`JobResult::deadline_missed`]. A job whose
    /// remaining budget at claim time is below the configured pressure
    /// window may be downgraded to a cheaper configuration (labeled in
    /// [`JobResult::degraded`] — never silently).
    pub deadline: Option<Duration>,
}

impl JobSpec {
    pub fn new(tenant: TenantId, problem: Arc<CasidaProblem>) -> Self {
        JobSpec {
            tenant,
            problem,
            solver: Solver::builder().build(),
            fault: None,
            deadline: None,
        }
    }

    /// Use this fully-configured [`Solver`] (version is ignored by the
    /// distributed path; its options drive the solve).
    pub fn with_solver(mut self, solver: Solver) -> Self {
        self.solver = solver;
        self
    }

    /// Arm `plan` for this job only (see [`JobSpec::fault`]).
    pub fn with_fault_plan(mut self, plan: faultkit::FaultPlan) -> Self {
        self.fault = Some(faultkit::Handle::armed(plan));
        self
    }

    /// Give this job `budget` from submission to delivery (see
    /// [`JobSpec::deadline`]).
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    pub(crate) fn opts(&self) -> &SolveOptions {
        self.solver.options()
    }
}

/// Why `submit` refused a job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The tenant already has `max_queued_per_tenant` jobs waiting.
    TenantQueueFull { tenant: TenantId, limit: usize },
    /// The global queue is at capacity.
    QueueFull { limit: usize },
    /// The service is shutting down.
    ShuttingDown,
    /// The tenant's circuit breaker is open: `failures` consecutive jobs
    /// failed terminally, so the tenant's load is shed at admission until
    /// the cooldown elapses and a half-open probe succeeds.
    CircuitOpen { tenant: TenantId, failures: u32 },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::TenantQueueFull { tenant, limit } => {
                write!(f, "tenant {tenant} already has {limit} queued jobs")
            }
            AdmissionError::QueueFull { limit } => write!(f, "queue full ({limit} jobs)"),
            AdmissionError::ShuttingDown => write!(f, "service is shutting down"),
            AdmissionError::CircuitOpen { tenant, failures } => write!(
                f,
                "tenant {tenant} circuit breaker open after {failures} consecutive failure(s)"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Where a job is in its lifecycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the admission queue (first attempt or a retry backoff).
    Queued,
    /// Claimed by a solver group and executing.
    Running,
    /// Finished; results available via [`JobHandle::wait`].
    Completed,
    /// Failed terminally: the retry budget is exhausted or the deadline
    /// expired. Details via [`JobHandle::outcome`].
    Failed,
    /// Cancelled before a group claimed it.
    Cancelled,
    /// The service shut down before the job ran.
    Aborted,
}

/// What a completed job hands back.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Replicated eigenvalues (lowest `n_states`).
    pub values: Vec<f64>,
    /// Stage timings from the executing group's leader rank.
    pub timings: StageTimings,
    /// Served from the result cache without touching a solver group.
    pub cache_hit: bool,
    /// Number of same-structure jobs that shared this job's Hamiltonian
    /// build (1 = solo).
    pub batch_size: usize,
    /// Collective calls this job's eigensolve issued on the group
    /// communicator (leader rank's stats window; 0 for cache hits).
    pub comm_calls: u64,
    /// Faults that fired during this job (accumulated across retry
    /// attempts; empty unless the job carried a fault plan).
    pub fault_events: Vec<String>,
    /// Execution attempts this result took (1 = solved first try; >1 means
    /// the retry policy re-queued and healed a recoverable failure).
    pub attempts: u32,
    /// `Some(label)` when the scheduler downgraded this job to a cheaper
    /// configuration (deadline pressure or a breaker half-open probe); the
    /// same label appears in `Solution::recovery` on the direct path. A
    /// degraded result is never served from or inserted into the cache.
    pub degraded: Option<String>,
    /// The job finished after its deadline (delivered anyway, counted in
    /// `serve.deadline_miss`).
    pub deadline_missed: bool,
}

/// Terminal state of a job, from [`JobHandle::outcome`]. Richer than
/// [`JobHandle::wait`] (which only yields results): failures carry their
/// typed error rendering and attempt count, deadline expiries how long the
/// job waited.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// Solved (possibly degraded or after retries — see the fields of
    /// [`JobResult`]).
    Completed(JobResult),
    /// The retry budget is exhausted; `error` is the last
    /// [`faultkit::SolveError`] rendering.
    Failed { error: String, attempts: u32 },
    /// The deadline expired before a solver group could run the job.
    DeadlineExceeded { waited: Duration },
    /// Cancelled via [`JobHandle::cancel`] while queued.
    Cancelled,
    /// The service shut down before the job ran.
    Aborted,
}

pub(crate) struct JobFailure {
    pub error: String,
    pub deadline_exceeded: bool,
    pub waited: Duration,
}

pub(crate) struct JobInner {
    pub status: JobStatus,
    pub result: Option<JobResult>,
    pub failure: Option<JobFailure>,
    /// Times a solver group claimed this job (bumped by `set_running`).
    pub attempts: u32,
}

/// Shared core of a job: spec + status + completion signalling.
pub(crate) struct JobCore {
    pub spec: JobSpec,
    pub inner: Mutex<JobInner>,
    pub cv: Condvar,
    /// Key the scheduler batches and caches by (see [`batch_key`]).
    pub key: BatchKey,
    /// When the job entered the service (deadlines count from here).
    pub submitted: Instant,
    /// Run alone: set for re-queued retries (a fresh job must never rejoin
    /// its old batch) and for breaker half-open probes.
    pub solo: AtomicBool,
    /// Claimed with its deadline budget under the pressure window — the
    /// executing group downgrades it (degradation ladder) to land in time.
    pub pressured: AtomicBool,
    /// Half-open circuit-breaker probe: bypasses the result cache so the
    /// probe exercises a real solve, and runs solo.
    pub probe: AtomicBool,
}

impl JobCore {
    pub fn new(spec: JobSpec) -> Arc<Self> {
        let key = batch_key(&spec);
        Arc::new(JobCore {
            spec,
            inner: Mutex::new(JobInner {
                status: JobStatus::Queued,
                result: None,
                failure: None,
                attempts: 0,
            }),
            cv: Condvar::new(),
            key,
            submitted: Instant::now(),
            solo: AtomicBool::new(false),
            pressured: AtomicBool::new(false),
            probe: AtomicBool::new(false),
        })
    }

    /// Absolute deadline, if the spec carries a budget.
    pub fn deadline(&self) -> Option<Instant> {
        self.spec.deadline.map(|d| self.submitted + d)
    }

    /// May this job share a batch? Fault plans, retries, probes, and
    /// pressured (to-be-degraded) jobs all run alone.
    pub fn batchable(&self) -> bool {
        self.spec.fault.is_none()
            && !self.solo.load(Ordering::Relaxed)
            && !self.pressured.load(Ordering::Relaxed)
            && !self.probe.load(Ordering::Relaxed)
    }

    pub fn complete(&self, result: JobResult) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        g.status = JobStatus::Completed;
        g.result = Some(result);
        self.cv.notify_all();
    }

    /// Terminal failure: retry budget exhausted (`deadline_exceeded` false)
    /// or expired in the queue (`deadline_exceeded` true).
    pub fn fail(&self, error: String, deadline_exceeded: bool) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        g.status = JobStatus::Failed;
        g.failure = Some(JobFailure {
            error,
            deadline_exceeded,
            waited: self.submitted.elapsed(),
        });
        self.cv.notify_all();
    }

    /// Mark claimed-and-executing; returns the attempt number (1-based).
    pub fn set_running(&self) -> u32 {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        g.status = JobStatus::Running;
        g.attempts += 1;
        let attempts = g.attempts;
        self.cv.notify_all();
        attempts
    }

    pub fn attempts(&self) -> u32 {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).attempts
    }

    pub fn set_status(&self, status: JobStatus) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        g.status = status;
        self.cv.notify_all();
    }
}

/// Typed handle to a submitted job: poll status, cancel while queued, or
/// block for the result. Cloneable; all clones observe the same job.
#[derive(Clone)]
pub struct JobHandle {
    pub(crate) core: Arc<JobCore>,
    pub(crate) queue: Arc<crate::scheduler::SchedulerState>,
}

impl JobHandle {
    /// Current lifecycle state.
    pub fn status(&self) -> JobStatus {
        self.core.inner.lock().unwrap_or_else(|p| p.into_inner()).status.clone()
    }

    /// The tenant this job belongs to.
    pub fn tenant(&self) -> TenantId {
        self.core.spec.tenant
    }

    /// Cancel the job if it is still queued. Returns `true` on success;
    /// `false` if a group already claimed it (running jobs execute
    /// collectives in lockstep across ranks and cannot be interrupted).
    pub fn cancel(&self) -> bool {
        self.queue.cancel(&self.core)
    }

    /// Block until the job reaches a terminal state. Returns the result for
    /// completed jobs, `None` for failed/cancelled/aborted ones (use
    /// [`JobHandle::outcome`] for the typed terminal state).
    pub fn wait(&self) -> Option<JobResult> {
        let mut g = self.core.inner.lock().unwrap_or_else(|p| p.into_inner());
        while matches!(g.status, JobStatus::Queued | JobStatus::Running) {
            g = self.core.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
        g.result.clone()
    }

    /// Block until the job reaches a terminal state and return it, typed.
    pub fn outcome(&self) -> JobOutcome {
        let mut g = self.core.inner.lock().unwrap_or_else(|p| p.into_inner());
        while matches!(g.status, JobStatus::Queued | JobStatus::Running) {
            g = self.core.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
        match g.status {
            JobStatus::Completed => {
                JobOutcome::Completed(g.result.clone().expect("completed jobs carry a result"))
            }
            JobStatus::Failed => {
                let f = g.failure.as_ref().expect("failed jobs carry a failure record");
                if f.deadline_exceeded {
                    JobOutcome::DeadlineExceeded { waited: f.waited }
                } else {
                    JobOutcome::Failed { error: f.error.clone(), attempts: g.attempts }
                }
            }
            JobStatus::Cancelled => JobOutcome::Cancelled,
            JobStatus::Aborted => JobOutcome::Aborted,
            JobStatus::Queued | JobStatus::Running => unreachable!("loop exits on terminal"),
        }
    }

    /// Like [`JobHandle::wait`] with a deadline. `None` means still pending.
    pub fn wait_timeout(&self, dur: Duration) -> Option<JobResult> {
        let deadline = std::time::Instant::now() + dur;
        let mut g = self.core.inner.lock().unwrap_or_else(|p| p.into_inner());
        while matches!(g.status, JobStatus::Queued | JobStatus::Running) {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return None;
            }
            let (guard, _) = self.core.cv.wait_timeout(g, left).unwrap_or_else(|p| p.into_inner());
            g = guard;
        }
        g.result.clone()
    }
}

/// FNV-1a over the problem's defining bytes: dimensions, orbital data,
/// energies, kernel samples, grid shape, and spin channel. Two problems
/// with equal hashes are treated as the same structure by batching and the
/// result cache.
pub fn structure_hash(p: &CasidaProblem) -> u64 {
    let mut h = Fnv::new();
    h.usize(p.n_r());
    h.usize(p.n_v());
    h.usize(p.n_c());
    for d in p.grid.n {
        h.usize(d);
    }
    h.u64(p.kernel_kind as u64);
    h.f64s(p.psi_v.as_slice());
    h.f64s(p.psi_c.as_slice());
    h.f64s(&p.eps_v);
    h.f64s(&p.eps_c);
    h.f64s(&p.fxc);
    h.finish()
}

/// Everything the Hamiltonian build depends on. Jobs with equal keys (and
/// no fault plan) can share one distributed build; results stay bitwise
/// identical because the per-job eigensolve is unchanged (property-tested in
/// `lrtddft::parallel`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BatchKey {
    pub structure: u64,
    /// ISDF rank resolved at this problem's dimensions.
    pub n_mu: usize,
    pub seed: u64,
    pub pipelined: bool,
}

pub(crate) fn batch_key(spec: &JobSpec) -> BatchKey {
    let p = &spec.problem;
    let o = spec.opts();
    BatchKey {
        structure: structure_hash(p),
        n_mu: o.rank.resolve(p.n_r(), p.n_v(), p.n_c()),
        seed: o.seed,
        pipelined: o.pipelined,
    }
}

/// Cache key: the batch key plus every knob the eigensolve depends on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub batch: BatchKey,
    pub n_states: usize,
    pub eigensolver_syev: bool,
    pub lobpcg_max_iter: usize,
    /// `tol` bits — f64 keyed exactly.
    pub lobpcg_tol_bits: u64,
}

pub(crate) fn cache_key(spec: &JobSpec) -> CacheKey {
    let o = spec.opts();
    CacheKey {
        batch: batch_key(spec),
        n_states: o.n_states,
        eigensolver_syev: matches!(o.eigensolver, lrtddft::Eig::Syev),
        lobpcg_max_iter: o.lobpcg.max_iter,
        lobpcg_tol_bits: o.lobpcg.tol.to_bits(),
    }
}

/// Minimal FNV-1a accumulator (same constants as faultkit's site hash).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn f64s(&mut self, vs: &[f64]) {
        for v in vs {
            self.u64(v.to_bits());
        }
    }
    fn finish(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrtddft::synthetic_problem;

    #[test]
    fn structure_hash_distinguishes_problems() {
        let a = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let b = synthetic_problem([8, 8, 8], 6.0, 2, 3);
        let mut c = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        assert_eq!(structure_hash(&a), structure_hash(&c));
        assert_ne!(structure_hash(&a), structure_hash(&b));
        c.eps_c[0] += 1e-9; // any bit flip changes the structure
        assert_ne!(structure_hash(&a), structure_hash(&c));
    }

    #[test]
    fn batch_key_ignores_eigensolve_only_knobs() {
        let p = Arc::new(synthetic_problem([8, 8, 8], 6.0, 2, 2));
        let base = JobSpec::new(1, p.clone());
        let more_states = JobSpec::new(2, p.clone())
            .with_solver(Solver::builder().n_states(5).build());
        assert_eq!(batch_key(&base), batch_key(&more_states));
        let other_seed =
            JobSpec::new(3, p).with_solver(Solver::builder().seed(99).build());
        assert_ne!(batch_key(&base), batch_key(&other_seed));
    }

    #[test]
    fn cache_key_separates_eigensolve_knobs() {
        let p = Arc::new(synthetic_problem([8, 8, 8], 6.0, 2, 2));
        let a = JobSpec::new(1, p.clone());
        let b = JobSpec::new(1, p.clone())
            .with_solver(Solver::builder().n_states(5).build());
        assert_ne!(cache_key(&a), cache_key(&b));
        let c = JobSpec::new(2, p); // tenant does NOT key the cache
        assert_eq!(cache_key(&a), cache_key(&c));
    }
}
