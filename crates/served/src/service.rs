//! The serving runtime: split communicator groups, group-leader batch
//! dispatch, per-job tenant scoping, and the public [`Service`] front door.
//!
//! Topology: `Service::start` launches one supervisor thread that runs the
//! whole rank pool as an SPMD program. Every rank computes its group color
//! (`rank / group_size`) and calls [`parcomm::Comm::split`] exactly once, so
//! the world communicator partitions into `groups` disjoint solver groups
//! that never synchronize with each other again. Each group's rank 0 is its
//! *leader*: leaders compete for batches from the shared admission queue and
//! publish them to their group through a generation-counted slot; the
//! followers wait on the slot, then the whole group executes the batch in
//! lockstep (the solve's collectives are the synchronization).
//!
//! Tenant isolation invariants (tested here and in `tests/serving.rs`):
//!
//! 1. a job's fault plan is installed via [`faultkit::install_scoped`] only
//!    for the duration of its own batch, on exactly the ranks of the group
//!    executing it — a NaN poison or rank stall one tenant injects can never
//!    fire inside another tenant's solve;
//! 2. faulted jobs are never co-batched and never touch the result cache;
//! 3. fault-free results are bitwise identical to a solo
//!    [`lrtddft::parallel::distributed_solve_with`] run at the same group
//!    size, whatever batching or scheduling happened around them.

use crate::cache::{CacheStats, ResultCache};
use crate::job::{cache_key, AdmissionError, JobCore, JobHandle, JobResult, JobSpec};
use crate::scheduler::SchedulerState;
use lrtddft::parallel::{distributed_eigensolve, distributed_isdf_hamiltonian_with};
use lrtddft::IsdfHamiltonian;
use parcomm::{spmd, Comm};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Service topology and policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Total thread-ranks in the world communicator.
    pub ranks: usize,
    /// Disjoint solver groups the world splits into; must divide `ranks`.
    pub groups: usize,
    /// Per-tenant admission quota (max queued jobs).
    pub max_queued_per_tenant: usize,
    /// Global queue capacity.
    pub queue_capacity: usize,
    /// Max same-shape jobs sharing one Hamiltonian build.
    pub max_batch: usize,
    /// Result-cache entry lifetime.
    pub cache_ttl: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            ranks: 4,
            groups: 2,
            max_queued_per_tenant: 16,
            queue_capacity: 256,
            max_batch: 8,
            cache_ttl: Duration::from_secs(300),
        }
    }
}

/// What a group leader publishes to its followers.
#[derive(Clone)]
enum SlotCmd {
    Run(Vec<Arc<JobCore>>),
    Quit,
}

/// One per group: the leader bumps `generation` and stores the command;
/// followers wait for the bump. The leader can be at most one batch ahead —
/// executing a batch requires collectives, which block until the followers
/// have read the slot and joined — so commands are never lost.
struct GroupSlot {
    slot: Mutex<(u64, Option<SlotCmd>)>,
    cv: Condvar,
}

impl GroupSlot {
    fn new() -> Self {
        GroupSlot { slot: Mutex::new((0, None)), cv: Condvar::new() }
    }

    fn publish(&self, cmd: SlotCmd) -> u64 {
        let mut g = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        g.0 += 1;
        g.1 = Some(cmd);
        let gen = g.0;
        drop(g);
        self.cv.notify_all();
        gen
    }

    fn wait_past(&self, seen: u64) -> (u64, SlotCmd) {
        let mut g = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        while g.0 == seen {
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
        (g.0, g.1.clone().expect("published slot always carries a command"))
    }
}

/// Multi-tenant solve service. Construct with [`Service::start`], submit
/// work with [`Service::submit`], stop with [`Service::shutdown`] (or just
/// drop it — queued jobs still drain).
pub struct Service {
    config: ServeConfig,
    sched: Arc<SchedulerState>,
    cache: Arc<ResultCache>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Boot the rank pool and start serving. Panics if `groups` does not
    /// evenly divide `ranks`.
    pub fn start(config: ServeConfig) -> Service {
        assert!(config.ranks > 0 && config.groups > 0, "need at least one rank and one group");
        assert_eq!(
            config.ranks % config.groups,
            0,
            "groups ({}) must divide ranks ({})",
            config.groups,
            config.ranks
        );
        let sched = Arc::new(SchedulerState::new(
            config.max_queued_per_tenant,
            config.queue_capacity,
            config.max_batch,
        ));
        let cache = Arc::new(ResultCache::new(config.cache_ttl));
        let supervisor = {
            let sched = Arc::clone(&sched);
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let slots: Vec<GroupSlot> =
                    (0..config.groups).map(|_| GroupSlot::new()).collect();
                let group_size = config.ranks / config.groups;
                spmd(config.ranks, |world| {
                    worker(world, group_size, &slots, &sched, &cache);
                });
            })
        };
        Service { config, sched, cache, supervisor: Some(supervisor) }
    }

    /// Admit a job. Fault-free jobs whose results are already cached
    /// complete immediately (`cache_hit`, `batch_size == 0`); everything
    /// else is enqueued subject to the tenant quota and queue capacity.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, AdmissionError> {
        let core = JobCore::new(spec);
        let handle = JobHandle { core: Arc::clone(&core), queue: Arc::clone(&self.sched) };
        if core.spec.fault.is_none() {
            if let Some(values) = self.cache.get(&cache_key(&core.spec)) {
                core.complete(JobResult {
                    values,
                    timings: Default::default(),
                    cache_hit: true,
                    batch_size: 0,
                    comm_calls: 0,
                    fault_events: Vec::new(),
                });
                return Ok(handle);
            }
        }
        self.sched.submit(core)?;
        Ok(handle)
    }

    /// Stop admitting, drain the queue, and join the rank pool.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.sched.shutdown();
        if let Some(h) = self.supervisor.take() {
            h.join().expect("serving rank pool panicked");
        }
    }

    /// Result-cache hit/miss/entry counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Jobs currently queued (all tenants).
    pub fn queued_len(&self) -> usize {
        self.sched.queued_len()
    }

    /// Jobs currently queued for one tenant (counts against its quota).
    pub fn queued_for(&self, tenant: crate::job::TenantId) -> usize {
        self.sched.queued_for(tenant)
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Ranks per solver group.
    pub fn group_size(&self) -> usize {
        self.config.ranks / self.config.groups
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Per-rank body of the SPMD serving pool.
fn worker(
    world: &Comm,
    group_size: usize,
    slots: &[GroupSlot],
    sched: &SchedulerState,
    cache: &ResultCache,
) {
    let color = world.rank() / group_size;
    // Collective over the world communicator — every rank splits exactly
    // once, and the groups never synchronize with each other afterwards.
    let group = world.split(color, world.rank());
    obskit::set_thread_label(&format!("serve g{color} r{}", group.rank()));
    let slot = &slots[color];
    let mut seen = 0u64;
    loop {
        let cmd = if group.rank() == 0 {
            let cmd = match sched.next_batch() {
                Some(batch) => SlotCmd::Run(batch),
                None => SlotCmd::Quit,
            };
            seen = slot.publish(cmd.clone());
            cmd
        } else {
            let (gen, cmd) = slot.wait_past(seen);
            seen = gen;
            cmd
        };
        match cmd {
            SlotCmd::Run(batch) => execute_batch(&group, &batch, cache),
            SlotCmd::Quit => break,
        }
    }
}

/// Run one batch on every rank of a group: a single shared Hamiltonian
/// build, then one eigensolve per job. Results are bitwise identical to
/// per-job solo runs because the build is deterministic in the batch key
/// and the eigensolve path is untouched (pinned by
/// `shared_build_eigensolve_bitwise_matches_solo_solve` in `lrtddft`).
fn execute_batch(group: &Comm, batch: &[Arc<JobCore>], cache: &ResultCache) {
    let lead = &batch[0].spec;
    // Solo faulted job (the scheduler never co-batches fault plans): arm the
    // tenant's plan on this rank for exactly this batch. For clean batches
    // this *clears* any ambient plan — belt and braces for isolation.
    let _fault_window = faultkit::install_scoped(lead.fault.clone());
    obskit::set_tenant(Some(lead.tenant));

    group.take_stats(); // discard idle-window stats; build gets a fresh window
    let opts0 = *lead.opts();
    let (ham, build_timings) = distributed_isdf_hamiltonian_with(group, &lead.problem, &opts0);
    let build_stats = group.take_stats();
    // An injected fault can leave non-finite entries in the replicated
    // factors; every rank sees the same copy, so all ranks agree to skip the
    // eigensolve (dense fallbacks on NaN do not terminate) and fail the job.
    let healthy = ham_is_finite(&ham);

    for core in batch {
        let spec = &core.spec;
        obskit::set_tenant(Some(spec.tenant));
        let opts = *spec.opts();
        let k = opts.n_states.min(spec.problem.n_cv());
        let mut timings = build_timings;
        let values = if healthy {
            distributed_eigensolve(group, &ham, k, &opts, &mut timings)
        } else {
            vec![f64::NAN; k]
        };
        let eig_stats = group.take_stats();
        if group.rank() == 0 {
            let fault_events = spec
                .fault
                .as_ref()
                .map(|h| h.events().iter().map(|e| e.render()).collect())
                .unwrap_or_default();
            if spec.fault.is_none() && healthy {
                cache.put(cache_key(spec), values.clone());
            }
            core.complete(JobResult {
                values,
                timings,
                cache_hit: false,
                batch_size: batch.len(),
                comm_calls: build_stats.collective_calls + eig_stats.collective_calls,
                fault_events,
            });
        }
        // Followers only participate in the collectives; the leader owns
        // handle completion and cache population.
    }
    obskit::set_tenant(None);
}

fn ham_is_finite(ham: &IsdfHamiltonian) -> bool {
    ham.diag_d.iter().all(|v| v.is_finite())
        && ham.c.as_slice().iter().all(|v| v.is_finite())
        && ham.v_tilde.as_slice().iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobStatus;
    use lrtddft::parallel::distributed_solve_with;
    use lrtddft::{synthetic_problem, Solver};

    fn small_config() -> ServeConfig {
        ServeConfig { ranks: 2, groups: 1, ..Default::default() }
    }

    #[test]
    fn served_results_match_solo_distributed_solve_bitwise() {
        let problem = Arc::new(synthetic_problem([6, 6, 6], 6.0, 2, 2));
        let solver = Solver::builder().n_states(2).seed(11).build();
        let opts = *solver.options();
        let solo = spmd(2, |c| distributed_solve_with(c, &problem, &opts));

        let service = Service::start(small_config());
        let h = service
            .submit(JobSpec::new(7, Arc::clone(&problem)).with_solver(solver))
            .unwrap();
        let res = h.wait().expect("job completed");
        assert_eq!(res.values, solo[0].0, "served values must be bitwise solo-identical");
        assert!(!res.cache_hit);
        assert_eq!(res.batch_size, 1);
        assert!(res.comm_calls > 0, "eigensolve window should record collectives");
        service.shutdown();
    }

    #[test]
    fn repeat_submission_is_served_from_cache() {
        let problem = Arc::new(synthetic_problem([6, 6, 6], 6.0, 2, 2));
        let service = Service::start(small_config());
        let first = service.submit(JobSpec::new(1, Arc::clone(&problem))).unwrap();
        let cold = first.wait().expect("first run completes");
        assert!(!cold.cache_hit);

        let second = service.submit(JobSpec::new(2, Arc::clone(&problem))).unwrap();
        assert_eq!(second.status(), JobStatus::Completed, "hit completes at submit");
        let warm = second.wait().expect("cache hit carries a result");
        assert!(warm.cache_hit);
        assert_eq!(warm.values, cold.values);
        assert_eq!(warm.batch_size, 0);
        let stats = service.cache_stats();
        assert!(stats.hits >= 1 && stats.entries >= 1);
        service.shutdown();
    }

    #[test]
    fn quota_violations_surface_at_submit() {
        let config = ServeConfig {
            ranks: 2,
            groups: 1,
            max_queued_per_tenant: 1,
            ..Default::default()
        };
        let service = Service::start(config);
        // Distinct seeds defeat both the cache and same-key batching, and
        // enough copies guarantee one is still queued when we overflow.
        let problem = Arc::new(synthetic_problem([6, 6, 6], 6.0, 2, 2));
        let mut handles = Vec::new();
        let mut refused = 0;
        for i in 0..12u64 {
            let spec = JobSpec::new(1, Arc::clone(&problem))
                .with_solver(Solver::builder().seed(1000 + i).build());
            match service.submit(spec) {
                Ok(h) => handles.push(h),
                Err(AdmissionError::TenantQueueFull { tenant, limit }) => {
                    assert_eq!((tenant, limit), (1, 1));
                    refused += 1;
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
        assert!(refused > 0, "quota of 1 must refuse at least one of 12 rapid submits");
        for h in handles {
            assert!(h.wait().is_some());
        }
        service.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_jobs() {
        let problem = Arc::new(synthetic_problem([6, 6, 6], 6.0, 2, 2));
        let service = Service::start(small_config());
        let handles: Vec<_> = (0..3u64)
            .map(|i| {
                let spec = JobSpec::new(i, Arc::clone(&problem))
                    .with_solver(Solver::builder().seed(i).build());
                service.submit(spec).unwrap()
            })
            .collect();
        service.shutdown();
        for h in handles {
            assert_eq!(h.status(), JobStatus::Completed);
        }
    }

    #[test]
    fn two_groups_serve_disjoint_jobs() {
        let problem = Arc::new(synthetic_problem([6, 6, 6], 6.0, 2, 2));
        let service = Service::start(ServeConfig { ranks: 4, groups: 2, ..Default::default() });
        assert_eq!(service.group_size(), 2);
        let solver_a = Solver::builder().seed(1).build();
        let solver_b = Solver::builder().seed(2).build();
        let opts_a = *solver_a.options();
        let opts_b = *solver_b.options();
        let a = service.submit(JobSpec::new(1, Arc::clone(&problem)).with_solver(solver_a));
        let b = service.submit(JobSpec::new(2, Arc::clone(&problem)).with_solver(solver_b));
        let ra = a.unwrap().wait().expect("job a");
        let rb = b.unwrap().wait().expect("job b");
        // Group size is 2 either way, so solo runs at 2 ranks are the oracle.
        let solo_a = spmd(2, |c| distributed_solve_with(c, &problem, &opts_a));
        let solo_b = spmd(2, |c| distributed_solve_with(c, &problem, &opts_b));
        assert_eq!(ra.values, solo_a[0].0);
        assert_eq!(rb.values, solo_b[0].0);
        service.shutdown();
    }
}
