//! The serving runtime: split communicator groups, group-leader batch
//! dispatch, per-job tenant scoping, and the public [`Service`] front door.
//!
//! Topology: `Service::start` launches one supervisor thread that runs the
//! whole rank pool as an SPMD program. Every rank computes its group color
//! (`rank / group_size`) and calls [`parcomm::Comm::split`] exactly once, so
//! the world communicator partitions into `groups` disjoint solver groups
//! that never synchronize with each other again. Each group's rank 0 is its
//! *leader*: leaders compete for batches from the shared admission queue and
//! publish them to their group through a generation-counted slot; the
//! followers wait on the slot, then the whole group executes the batch in
//! lockstep (the solve's collectives are the synchronization).
//!
//! Resilience (PR 10): per-job deadlines are enforced at claim time by the
//! scheduler; recoverable failures are re-queued as fresh solo jobs under a
//! seeded exponential backoff until the attempt budget runs out; terminal
//! failures feed per-tenant circuit breakers that shed load at admission;
//! deadline-pressured jobs and breaker probes are downgraded on the
//! degradation ladder ([`lrtddft::degrade`]) — always labeled, never
//! silently; and a monitor thread runs the stall detector over leader
//! heartbeats, marking wedged groups unhealthy (their queue share drains to
//! the surviving groups because every leader pulls from the one shared
//! queue).
//!
//! SPMD symmetry: all resilience *decisions* (deadline expiry, degradation,
//! retry, breaker transitions) are taken by the leader **before** publishing
//! a batch or after the batch's collectives complete — never divergently in
//! the middle of a solve. The published [`RunJob`] carries the effective
//! per-job options so every rank of the group executes the identical
//! collective sequence.
//!
//! Tenant isolation invariants (tested here and in `tests/serving.rs`):
//!
//! 1. a job's fault plan is installed via [`faultkit::install_scoped`] only
//!    for the duration of its own batch, on exactly the ranks of the group
//!    executing it — a NaN poison or rank stall one tenant injects can never
//!    fire inside another tenant's solve;
//! 2. faulted jobs are never co-batched and never touch the result cache
//!    (nor do degraded results or breaker probes);
//! 3. fault-free full-cost results are bitwise identical to a solo
//!    [`lrtddft::Solver::solve_distributed`] run at the same group size,
//!    whatever batching, retries, or scheduling happened around them.

use crate::cache::{CacheStats, ResultCache};
use crate::job::{cache_key, AdmissionError, JobCore, JobHandle, JobResult, JobSpec};
use crate::resilience::{retry_delay, Admit, Breakers, GroupHealth, ResilienceConfig};
use crate::scheduler::SchedulerState;
use lrtddft::parallel::{distributed_eigensolve, distributed_isdf_hamiltonian_with};
use lrtddft::{CasidaProblem, IsdfHamiltonian, NumericalError, SolveError, SolveOptions};
use parcomm::{spmd, Comm};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service topology and policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Total thread-ranks in the world communicator.
    pub ranks: usize,
    /// Disjoint solver groups the world splits into; must divide `ranks`.
    pub groups: usize,
    /// Per-tenant admission quota (max queued jobs).
    pub max_queued_per_tenant: usize,
    /// Global queue capacity.
    pub queue_capacity: usize,
    /// Max same-shape jobs sharing one Hamiltonian build.
    pub max_batch: usize,
    /// Result-cache entry lifetime.
    pub cache_ttl: Duration,
    /// Result-cache entry cap (LRU eviction past this).
    pub cache_capacity: usize,
    /// Retry/breaker/deadline/stall policy.
    pub resilience: ResilienceConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            ranks: 4,
            groups: 2,
            max_queued_per_tenant: 16,
            queue_capacity: 256,
            max_batch: 8,
            cache_ttl: Duration::from_secs(300),
            cache_capacity: 256,
            resilience: ResilienceConfig::default(),
        }
    }
}

/// One job as the leader published it: the core plus the *effective*
/// options every rank must use (degraded for pressured/probe claims). The
/// options ride in the slot so followers never re-derive — and thus never
/// diverge from — the leader's decision.
#[derive(Clone)]
struct RunJob {
    core: Arc<JobCore>,
    opts: SolveOptions,
    /// Ladder label when `opts` are a downgrade of the spec's options.
    degraded: Option<&'static str>,
}

/// What a group leader publishes to its followers.
#[derive(Clone)]
enum SlotCmd {
    Run(Vec<RunJob>),
    Quit,
}

/// One per group: the leader bumps `generation` and stores the command;
/// followers wait for the bump. The leader can be at most one batch ahead —
/// executing a batch requires collectives, which block until the followers
/// have read the slot and joined — so commands are never lost.
struct GroupSlot {
    slot: Mutex<(u64, Option<SlotCmd>)>,
    cv: Condvar,
}

impl GroupSlot {
    fn new() -> Self {
        GroupSlot { slot: Mutex::new((0, None)), cv: Condvar::new() }
    }

    fn publish(&self, cmd: SlotCmd) -> u64 {
        let mut g = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        g.0 += 1;
        g.1 = Some(cmd);
        let gen = g.0;
        drop(g);
        self.cv.notify_all();
        gen
    }

    fn wait_past(&self, seen: u64) -> (u64, SlotCmd) {
        let mut g = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        while g.0 == seen {
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
        (g.0, g.1.clone().expect("published slot always carries a command"))
    }
}

/// State shared by every rank of the pool plus the monitor thread.
struct Shared {
    sched: Arc<SchedulerState>,
    cache: Arc<ResultCache>,
    breakers: Arc<Breakers>,
    health: Arc<GroupHealth>,
    resilience: ResilienceConfig,
}

/// Multi-tenant solve service. Construct with [`Service::start`], submit
/// work with [`Service::submit`], stop with [`Service::shutdown`] (or just
/// drop it — queued jobs still drain).
pub struct Service {
    config: ServeConfig,
    sched: Arc<SchedulerState>,
    cache: Arc<ResultCache>,
    breakers: Arc<Breakers>,
    health: Arc<GroupHealth>,
    supervisor: Option<std::thread::JoinHandle<()>>,
    monitor: Option<std::thread::JoinHandle<()>>,
    monitor_stop: Arc<AtomicBool>,
}

impl Service {
    /// Boot the rank pool and start serving. Panics if `groups` does not
    /// evenly divide `ranks`.
    pub fn start(config: ServeConfig) -> Service {
        assert!(config.ranks > 0 && config.groups > 0, "need at least one rank and one group");
        assert_eq!(
            config.ranks % config.groups,
            0,
            "groups ({}) must divide ranks ({})",
            config.groups,
            config.ranks
        );
        let sched = Arc::new(SchedulerState::new(
            config.max_queued_per_tenant,
            config.queue_capacity,
            config.max_batch,
            config.resilience.pressure_window,
        ));
        let cache = Arc::new(ResultCache::new(config.cache_ttl, config.cache_capacity));
        let breakers = Arc::new(Breakers::new(&config.resilience));
        let health = Arc::new(GroupHealth::new(config.groups, &config.resilience));
        let supervisor = {
            let shared = Shared {
                sched: Arc::clone(&sched),
                cache: Arc::clone(&cache),
                breakers: Arc::clone(&breakers),
                health: Arc::clone(&health),
                resilience: config.resilience,
            };
            std::thread::spawn(move || {
                let slots: Vec<GroupSlot> =
                    (0..config.groups).map(|_| GroupSlot::new()).collect();
                let group_size = config.ranks / config.groups;
                spmd(config.ranks, |world| {
                    worker(world, group_size, &slots, &shared);
                });
            })
        };
        let monitor_stop = Arc::new(AtomicBool::new(false));
        let monitor = {
            let health = Arc::clone(&health);
            let stop = Arc::clone(&monitor_stop);
            let tick = (config.resilience.stall_timeout / 4).max(Duration::from_millis(5));
            Some(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    health.check();
                    std::thread::park_timeout(tick);
                }
            }))
        };
        Service {
            config,
            sched,
            cache,
            breakers,
            health,
            supervisor: Some(supervisor),
            monitor,
            monitor_stop,
        }
    }

    /// Admit a job. The tenant's circuit breaker is consulted first (an
    /// open breaker sheds the job with [`AdmissionError::CircuitOpen`]; a
    /// half-open one admits it as the probe). Fault-free jobs whose results
    /// are already cached complete immediately (`cache_hit`,
    /// `batch_size == 0`); everything else is enqueued subject to the
    /// tenant quota and queue capacity.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, AdmissionError> {
        let core = JobCore::new(spec);
        let handle = JobHandle { core: Arc::clone(&core), queue: Arc::clone(&self.sched) };
        let tenant = core.spec.tenant;
        match self.breakers.admit(tenant) {
            Ok(Admit::Normal) => {
                if core.spec.fault.is_none() {
                    if let Some(values) = self.cache.get(&cache_key(&core.spec)) {
                        core.complete(JobResult {
                            values,
                            timings: Default::default(),
                            cache_hit: true,
                            batch_size: 0,
                            comm_calls: 0,
                            fault_events: Vec::new(),
                            attempts: 0,
                            degraded: None,
                            deadline_missed: false,
                        });
                        return Ok(handle);
                    }
                }
            }
            // Probes bypass the cache (a probe must exercise a real solve)
            // and run solo.
            Ok(Admit::Probe) => core.probe.store(true, Ordering::Relaxed),
            Err(failures) => return Err(AdmissionError::CircuitOpen { tenant, failures }),
        }
        if let Err(e) = self.sched.submit(Arc::clone(&core)) {
            if core.probe.load(Ordering::Relaxed) {
                // The probe never made it into the queue; rewind the breaker
                // so the next admission attempt becomes the probe instead of
                // shedding forever.
                self.breakers.abort_probe(tenant);
            }
            return Err(e);
        }
        Ok(handle)
    }

    /// Stop admitting, drain the queue, and join the rank pool.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.sched.shutdown();
        if let Some(h) = self.supervisor.take() {
            h.join().expect("serving rank pool panicked");
        }
        self.monitor_stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.monitor.take() {
            h.thread().unpark();
            h.join().expect("health monitor panicked");
        }
    }

    /// Result-cache hit/miss/entry/eviction counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Jobs currently queued (all tenants).
    pub fn queued_len(&self) -> usize {
        self.sched.queued_len()
    }

    /// Jobs currently queued for one tenant (counts against its quota).
    pub fn queued_for(&self, tenant: crate::job::TenantId) -> usize {
        self.sched.queued_for(tenant)
    }

    /// Solver groups currently flagged unhealthy by the stall detector.
    pub fn unhealthy_groups(&self) -> usize {
        self.health.unhealthy_count()
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Ranks per solver group.
    pub fn group_size(&self) -> usize {
        self.config.ranks / self.config.groups
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Per-rank body of the SPMD serving pool.
fn worker(world: &Comm, group_size: usize, slots: &[GroupSlot], shared: &Shared) {
    let color = world.rank() / group_size;
    // Collective over the world communicator — every rank splits exactly
    // once, and the groups never synchronize with each other afterwards.
    let group = world.split(color, world.rank());
    obskit::set_thread_label(&format!("serve g{color} r{}", group.rank()));
    let slot = &slots[color];
    let leader = group.rank() == 0;
    let mut seen = 0u64;
    loop {
        let cmd = if leader {
            shared.health.beat(color);
            let cmd = match shared.sched.next_batch() {
                Some(batch) => SlotCmd::Run(prepare(batch)),
                None => SlotCmd::Quit,
            };
            seen = slot.publish(cmd.clone());
            cmd
        } else {
            let (gen, cmd) = slot.wait_past(seen);
            seen = gen;
            cmd
        };
        match cmd {
            SlotCmd::Run(batch) => {
                if leader {
                    shared.health.set_busy(color, true);
                }
                execute_batch(&group, &batch, shared);
                if leader {
                    shared.health.set_busy(color, false);
                }
            }
            SlotCmd::Quit => break,
        }
    }
}

/// Leader-side batch preparation: freeze each job's effective options.
/// Pressured and probe jobs (always claimed solo) walk the degradation
/// ladder; everything else runs its spec options untouched — the clean path
/// must stay bitwise identical.
fn prepare(batch: Vec<Arc<JobCore>>) -> Vec<RunJob> {
    batch
        .into_iter()
        .map(|core| {
            let opts = *core.spec.opts();
            let cheaper = (core.pressured.load(Ordering::Relaxed)
                || core.probe.load(Ordering::Relaxed))
            .then(|| degrade_for_distributed(&opts, &core.spec.problem))
            .flatten();
            match cheaper {
                Some(d) => RunJob { core, opts: d, degraded: d.degraded },
                None => RunJob { core, opts, degraded: None },
            }
        })
        .collect()
}

/// Walk [`lrtddft::degrade`] until a rung actually changes what the
/// *distributed* path computes (a smaller resolved ISDF rank or a different
/// eigensolver). The first rung — mixed precision — only affects the serial
/// path, so stopping there would label a downgrade that never happened;
/// skip past it instead. `None` when no distributed-visible downgrade
/// exists (already at the ladder floor): the job then runs at full cost.
fn degrade_for_distributed(opts: &SolveOptions, problem: &CasidaProblem) -> Option<SolveOptions> {
    let (n_r, n_v, n_c) = (problem.n_r(), problem.n_v(), problem.n_c());
    let base_rank = opts.rank.resolve(n_r, n_v, n_c);
    let mut cur = *opts;
    while let Some(next) = lrtddft::degrade(&cur, problem) {
        let visible = next.rank.resolve(n_r, n_v, n_c) != base_rank
            || next.eigensolver != opts.eigensolver;
        cur = next;
        if visible {
            return Some(cur);
        }
    }
    None
}

/// Run one batch on every rank of a group: a single shared Hamiltonian
/// build, then one eigensolve per job. Results are bitwise identical to
/// per-job solo runs because the build is deterministic in the batch key
/// and the eigensolve path is untouched (pinned by
/// `shared_build_eigensolve_bitwise_matches_solo_solve` in `lrtddft`).
fn execute_batch(group: &Comm, batch: &[RunJob], shared: &Shared) {
    let lead = &batch[0];
    // Solo faulted job (the scheduler never co-batches fault plans): arm the
    // tenant's plan on this rank for exactly this batch. For clean batches
    // this *clears* any ambient plan — belt and braces for isolation.
    let _fault_window = faultkit::install_scoped(lead.core.spec.fault.clone());
    obskit::set_tenant(Some(lead.core.spec.tenant));

    group.take_stats(); // discard idle-window stats; build gets a fresh window
    let (ham, build_timings) =
        distributed_isdf_hamiltonian_with(group, &lead.core.spec.problem, &lead.opts);
    let build_stats = group.take_stats();
    // An injected fault can leave non-finite entries in the replicated
    // factors; every rank sees the same copy, so all ranks agree to skip the
    // eigensolve (dense fallbacks on NaN do not terminate) and fail the job.
    let healthy = ham_is_finite(&ham);

    for job in batch {
        let spec = &job.core.spec;
        obskit::set_tenant(Some(spec.tenant));
        let k = job.opts.n_states.min(spec.problem.n_cv());
        let mut timings = build_timings;
        let values = if healthy {
            distributed_eigensolve(group, &ham, k, &job.opts, &mut timings)
        } else {
            vec![f64::NAN; k]
        };
        let eig_stats = group.take_stats();
        if group.rank() == 0 {
            let comm_calls = build_stats.collective_calls + eig_stats.collective_calls;
            finish_job(job, values, timings, batch.len(), comm_calls, shared);
        }
        // Followers only participate in the collectives; the leader owns
        // completion, retry, breaker, and cache decisions.
    }
    obskit::set_tenant(None);
}

/// Leader-only terminal/retry decision for one executed job. A non-finite
/// result with attempt budget left re-queues the job as a fresh solo entry
/// under seeded exponential backoff; without budget it fails terminally and
/// feeds the tenant's breaker. A finite result completes the job — with its
/// retry count, degrade label, and deadline verdict on the record.
fn finish_job(
    job: &RunJob,
    values: Vec<f64>,
    timings: lrtddft::StageTimings,
    batch_size: usize,
    comm_calls: u64,
    shared: &Shared,
) {
    let core = &job.core;
    let spec = &core.spec;
    let tenant = spec.tenant;
    let attempts = core.attempts();
    if values.iter().all(|v| v.is_finite()) {
        shared.breakers.record_success(tenant);
        let deadline_missed = core.deadline().is_some_and(|d| Instant::now() > d);
        if deadline_missed {
            obskit::add_serve_deadline_miss();
        }
        if job.degraded.is_some() {
            obskit::add_serve_degraded();
        }
        // Only clean, full-cost results may populate the cache: the key
        // does not encode fault plans or the degradation ladder, and probes
        // must keep exercising real solves.
        if spec.fault.is_none()
            && job.degraded.is_none()
            && !core.probe.load(Ordering::Relaxed)
        {
            shared.cache.put(cache_key(spec), values.clone());
        }
        let fault_events = spec
            .fault
            .as_ref()
            .map(|h| h.events().iter().map(|e| e.render()).collect())
            .unwrap_or_default();
        core.complete(JobResult {
            values,
            timings,
            cache_hit: false,
            batch_size,
            comm_calls,
            fault_events,
            attempts,
            degraded: job.degraded.map(str::to_owned),
            deadline_missed,
        });
    } else if attempts < shared.resilience.retry_max_attempts.max(1) {
        obskit::add_serve_retry();
        shared
            .sched
            .requeue(Arc::clone(core), retry_delay(&shared.resilience, tenant, attempts));
    } else {
        let err: SolveError = NumericalError::NonFinite {
            site: format!("serve.solve attempt {attempts}"),
            index: 0,
        }
        .into();
        if shared.breakers.record_failure(tenant) {
            obskit::add_serve_breaker_open();
        }
        core.fail(err.to_string(), false);
    }
}

fn ham_is_finite(ham: &IsdfHamiltonian) -> bool {
    ham.diag_d.iter().all(|v| v.is_finite())
        && ham.c.as_slice().iter().all(|v| v.is_finite())
        && ham.v_tilde.as_slice().iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobOutcome, JobStatus};
    use faultkit::{FaultKind, FaultPlan};
    use lrtddft::{synthetic_problem, Solver};

    fn small_config() -> ServeConfig {
        ServeConfig { ranks: 2, groups: 1, ..Default::default() }
    }

    fn solo_oracle(problem: &Arc<CasidaProblem>, solver: &Solver, ranks: usize) -> Vec<f64> {
        let problem = Arc::clone(problem);
        let solver = *solver;
        spmd(ranks, move |c| solver.solve_distributed(c, &problem).0)[0].clone()
    }

    #[test]
    fn served_results_match_solo_distributed_solve_bitwise() {
        let problem = Arc::new(synthetic_problem([6, 6, 6], 6.0, 2, 2));
        let solver = Solver::builder().n_states(2).seed(11).build();
        let solo = solo_oracle(&problem, &solver, 2);

        let service = Service::start(small_config());
        let h = service
            .submit(JobSpec::new(7, Arc::clone(&problem)).with_solver(solver))
            .unwrap();
        let res = h.wait().expect("job completed");
        assert_eq!(res.values, solo, "served values must be bitwise solo-identical");
        assert!(!res.cache_hit);
        assert_eq!(res.batch_size, 1);
        assert_eq!(res.attempts, 1);
        assert_eq!(res.degraded, None);
        assert!(!res.deadline_missed);
        assert!(res.comm_calls > 0, "eigensolve window should record collectives");
        service.shutdown();
    }

    #[test]
    fn repeat_submission_is_served_from_cache() {
        let problem = Arc::new(synthetic_problem([6, 6, 6], 6.0, 2, 2));
        let service = Service::start(small_config());
        let first = service.submit(JobSpec::new(1, Arc::clone(&problem))).unwrap();
        let cold = first.wait().expect("first run completes");
        assert!(!cold.cache_hit);

        let second = service.submit(JobSpec::new(2, Arc::clone(&problem))).unwrap();
        assert_eq!(second.status(), JobStatus::Completed, "hit completes at submit");
        let warm = second.wait().expect("cache hit carries a result");
        assert!(warm.cache_hit);
        assert_eq!(warm.values, cold.values);
        assert_eq!(warm.batch_size, 0);
        let stats = service.cache_stats();
        assert!(stats.hits >= 1 && stats.entries >= 1);
        service.shutdown();
    }

    #[test]
    fn quota_violations_surface_at_submit() {
        let config = ServeConfig {
            ranks: 2,
            groups: 1,
            max_queued_per_tenant: 1,
            ..Default::default()
        };
        let service = Service::start(config);
        // Distinct seeds defeat both the cache and same-key batching, and
        // enough copies guarantee one is still queued when we overflow.
        let problem = Arc::new(synthetic_problem([6, 6, 6], 6.0, 2, 2));
        let mut handles = Vec::new();
        let mut refused = 0;
        for i in 0..12u64 {
            let spec = JobSpec::new(1, Arc::clone(&problem))
                .with_solver(Solver::builder().seed(1000 + i).build());
            match service.submit(spec) {
                Ok(h) => handles.push(h),
                Err(AdmissionError::TenantQueueFull { tenant, limit }) => {
                    assert_eq!((tenant, limit), (1, 1));
                    refused += 1;
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
        assert!(refused > 0, "quota of 1 must refuse at least one of 12 rapid submits");
        for h in handles {
            assert!(h.wait().is_some());
        }
        service.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_jobs() {
        let problem = Arc::new(synthetic_problem([6, 6, 6], 6.0, 2, 2));
        let service = Service::start(small_config());
        let handles: Vec<_> = (0..3u64)
            .map(|i| {
                let spec = JobSpec::new(i, Arc::clone(&problem))
                    .with_solver(Solver::builder().seed(i).build());
                service.submit(spec).unwrap()
            })
            .collect();
        service.shutdown();
        for h in handles {
            assert_eq!(h.status(), JobStatus::Completed);
        }
    }

    #[test]
    fn two_groups_serve_disjoint_jobs() {
        let problem = Arc::new(synthetic_problem([6, 6, 6], 6.0, 2, 2));
        let service = Service::start(ServeConfig { ranks: 4, groups: 2, ..Default::default() });
        assert_eq!(service.group_size(), 2);
        let solver_a = Solver::builder().seed(1).build();
        let solver_b = Solver::builder().seed(2).build();
        let a = service.submit(JobSpec::new(1, Arc::clone(&problem)).with_solver(solver_a));
        let b = service.submit(JobSpec::new(2, Arc::clone(&problem)).with_solver(solver_b));
        let ra = a.unwrap().wait().expect("job a");
        let rb = b.unwrap().wait().expect("job b");
        // Group size is 2 either way, so solo runs at 2 ranks are the oracle.
        assert_eq!(ra.values, solo_oracle(&problem, &solver_a, 2));
        assert_eq!(rb.values, solo_oracle(&problem, &solver_b, 2));
        service.shutdown();
    }

    #[test]
    fn poisoned_job_is_retried_and_heals_to_bitwise_clean_values() {
        let problem = Arc::new(synthetic_problem([6, 6, 6], 6.0, 2, 2));
        let solver = Solver::builder().n_states(2).seed(5).build();
        let solo = solo_oracle(&problem, &solver, 2);

        let service = Service::start(small_config());
        let spec = JobSpec::new(3, Arc::clone(&problem))
            .with_solver(solver)
            .with_fault_plan(FaultPlan::new(17).with("par.v_tilde", 0, FaultKind::NanPoison));
        let res = service.submit(spec).unwrap().wait().expect("retried then solved");
        assert_eq!(res.attempts, 2, "poisoned first attempt, clean second");
        assert_eq!(res.values, solo, "healed result is bitwise solo-identical");
        assert!(!res.fault_events.is_empty(), "the injected fault is on the record");
        assert!(res.values.iter().all(|v| v.is_finite()));
        assert!(obskit::serve_counters().retries >= 1);
        service.shutdown();
    }

    #[test]
    fn exhausted_retries_fail_terminally_and_trip_the_breaker() {
        let problem = Arc::new(synthetic_problem([6, 6, 6], 6.0, 2, 2));
        let config = ServeConfig {
            ranks: 2,
            groups: 1,
            resilience: ResilienceConfig {
                retry_max_attempts: 1, // first failure is terminal
                breaker_threshold: 1,  // one terminal failure opens
                breaker_cooldown: Duration::from_millis(40),
                ..Default::default()
            },
            ..Default::default()
        };
        let service = Service::start(config);
        let poisoned = JobSpec::new(8, Arc::clone(&problem))
            .with_fault_plan(FaultPlan::new(23).with("par.v_tilde", 0, FaultKind::NanPoison));
        let h = service.submit(poisoned).unwrap();
        match h.outcome() {
            JobOutcome::Failed { error, attempts } => {
                assert_eq!(attempts, 1);
                assert!(error.contains("non-finite"), "typed error rendering: {error}");
            }
            other => panic!("expected terminal failure, got {other:?}"),
        }
        assert_eq!(h.status(), JobStatus::Failed);

        // Breaker is now open: clean submissions from tenant 8 are shed.
        match service.submit(JobSpec::new(8, Arc::clone(&problem))) {
            Err(AdmissionError::CircuitOpen { tenant, failures }) => {
                assert_eq!((tenant, failures), (8, 1));
            }
            Err(other) => panic!("expected CircuitOpen, got {other:?}"),
            Ok(_) => panic!("expected CircuitOpen, job was admitted"),
        }
        // Other tenants are unaffected.
        assert!(service.submit(JobSpec::new(9, Arc::clone(&problem))).is_ok());

        // After the cooldown one clean probe runs (degraded, solo, uncached)
        // and closes the breaker.
        std::thread::sleep(Duration::from_millis(50));
        let probe = service.submit(JobSpec::new(8, Arc::clone(&problem))).unwrap();
        let res = probe.wait().expect("probe solves");
        assert!(!res.cache_hit, "probes bypass the cache");
        assert!(res.values.iter().all(|v| v.is_finite()));
        let after = service.submit(JobSpec::new(8, Arc::clone(&problem))).unwrap();
        assert!(after.wait().is_some(), "breaker closed after the probe");
        service.shutdown();
    }

    #[test]
    fn deadline_pressure_degrades_with_a_label_never_silently() {
        let problem = Arc::new(synthetic_problem([6, 6, 6], 6.0, 2, 2));
        let config = ServeConfig {
            ranks: 2,
            groups: 1,
            resilience: ResilienceConfig {
                // Every deadline under 60s counts as pressure, so the job
                // below is deterministically pressured but never expired.
                pressure_window: Duration::from_secs(60),
                ..Default::default()
            },
            ..Default::default()
        };
        let service = Service::start(config);
        let spec = JobSpec::new(4, Arc::clone(&problem))
            .with_solver(Solver::builder().n_states(2).eigensolver(lrtddft::Eig::Lobpcg).build())
            .with_deadline(Duration::from_secs(30));
        let res = service.submit(spec).unwrap().wait().expect("degraded job completes");
        let label = res.degraded.as_deref().expect("downgrade must be labeled");
        assert!(
            ["mixed-precision", "rank-floor", "direct-eig"].contains(&label),
            "ladder label, got {label}"
        );
        assert!(res.values.iter().all(|v| v.is_finite()));
        assert_eq!(res.batch_size, 1, "pressured jobs run solo");
        assert!(obskit::serve_counters().degraded >= 1);

        // Degraded results never populate the cache: a repeat clean submit
        // at the same key must be a miss (fresh full-cost solve).
        let clean = JobSpec::new(5, Arc::clone(&problem))
            .with_solver(Solver::builder().n_states(2).eigensolver(lrtddft::Eig::Lobpcg).build());
        let clean_res = service.submit(clean).unwrap().wait().expect("clean job");
        assert!(!clean_res.cache_hit, "degraded result must not have seeded the cache");
        assert_eq!(clean_res.degraded, None);
        service.shutdown();
    }

    #[test]
    fn expired_deadline_yields_typed_outcome_through_the_service() {
        let problem = Arc::new(synthetic_problem([6, 6, 6], 6.0, 2, 2));
        let service = Service::start(small_config());
        let h = service
            .submit(
                JobSpec::new(6, Arc::clone(&problem))
                    .with_solver(Solver::builder().seed(777).build())
                    .with_deadline(Duration::ZERO),
            )
            .unwrap();
        match h.outcome() {
            JobOutcome::DeadlineExceeded { .. } => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn wedged_group_is_flagged_unhealthy_while_survivors_keep_serving() {
        let _x = crate::testsync::stall_exclusive();
        let problem = Arc::new(synthetic_problem([6, 6, 6], 6.0, 2, 2));
        let config = ServeConfig {
            ranks: 4,
            groups: 2,
            resilience: ResilienceConfig {
                stall_timeout: Duration::from_millis(40),
                ..Default::default()
            },
            ..Default::default()
        };
        let before = obskit::serve_counters().group_unhealthy;
        let service = Service::start(config);
        // One job stalls its group inside the solve (comm delay well past
        // the stall timeout); clean jobs from other tenants keep flowing
        // through the surviving group via the shared queue.
        let slow = JobSpec::new(1, Arc::clone(&problem)).with_fault_plan(
            FaultPlan::new(31)
                .with("comm.ireduce", 0, FaultKind::CommDelay { micros: 100_000 })
                .with("comm.iallreduce", 0, FaultKind::CommDelay { micros: 100_000 })
                .with("comm.iallgatherv", 0, FaultKind::CommDelay { micros: 100_000 }),
        );
        let slow_h = service.submit(slow).unwrap();
        let clean: Vec<_> = (0..4u64)
            .map(|i| {
                service
                    .submit(
                        JobSpec::new(10 + i, Arc::clone(&problem))
                            .with_solver(Solver::builder().seed(i).build()),
                    )
                    .unwrap()
            })
            .collect();
        for h in clean {
            assert!(h.wait().is_some(), "survivor group drains the queue");
        }
        let slow_res = slow_h.wait().expect("stalled job still finishes");
        assert!(slow_res.values.iter().all(|v| v.is_finite()));
        service.shutdown();
        assert!(
            obskit::serve_counters().group_unhealthy > before,
            "stall detector must have flagged the wedged group"
        );
    }
}
