//! Admission-controlled job queue with per-tenant quotas, same-shape
//! batching, deadline enforcement, and retry re-queueing.
//!
//! One `SchedulerState` is shared by every solver-group leader: leaders
//! block in [`SchedulerState::next_batch`], and whichever leader wins the
//! lock claims the first *eligible* job plus up to `max_batch - 1` queued
//! jobs with the same [`BatchKey`] — those share one distributed Hamiltonian
//! build. Jobs carrying a fault plan are always claimed solo so an injected
//! fault can never ride along with another tenant's work.
//!
//! Resilience hooks at claim time:
//!
//! - A job whose deadline already passed is failed terminally
//!   ([`JobStatus::Failed`], surfaced as `JobOutcome::DeadlineExceeded`)
//!   without occupying a solver group, and counted in `serve.deadline_miss`.
//! - A job whose remaining budget is under `pressure_window` is flagged
//!   *pressured* and claimed solo; the executing leader downgrades it on the
//!   degradation ladder instead of running it at full cost.
//! - Retried jobs re-enter via [`SchedulerState::requeue`] with a backoff
//!   (`not_before`): already admitted, they bypass quotas/capacity/shutdown,
//!   but they are marked solo so a *fresh* attempt can never rejoin (or
//!   absorb into) the batch shape that just failed.

use crate::job::{AdmissionError, JobCore, JobStatus, TenantId};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

struct Queued {
    core: Arc<JobCore>,
    /// Retry backoff: not claimable before this instant.
    not_before: Option<Instant>,
}

impl Queued {
    fn eligible(&self, now: Instant) -> bool {
        self.not_before.is_none_or(|t| t <= now)
    }
}

struct QueueInner {
    queue: VecDeque<Queued>,
    shutdown: bool,
}

/// Shared scheduler core: the admission queue plus its quota knobs.
pub(crate) struct SchedulerState {
    inner: Mutex<QueueInner>,
    cv: Condvar,
    /// Max jobs one tenant may have queued at once.
    pub max_queued_per_tenant: usize,
    /// Max jobs queued across all tenants.
    pub queue_capacity: usize,
    /// Max same-shape jobs per shared-build batch.
    pub max_batch: usize,
    /// Jobs claimed with less than this much deadline budget left are
    /// flagged pressured (degraded by the executing group).
    pub pressure_window: Duration,
}

impl SchedulerState {
    pub fn new(
        max_queued_per_tenant: usize,
        queue_capacity: usize,
        max_batch: usize,
        pressure_window: Duration,
    ) -> Self {
        SchedulerState {
            inner: Mutex::new(QueueInner { queue: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
            max_queued_per_tenant,
            queue_capacity,
            max_batch: max_batch.max(1),
            pressure_window,
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Admit `core` to the queue, enforcing shutdown, global capacity, and
    /// the per-tenant quota (in that order).
    pub fn submit(&self, core: Arc<JobCore>) -> Result<(), AdmissionError> {
        let mut g = self.lock();
        if g.shutdown {
            return Err(AdmissionError::ShuttingDown);
        }
        if g.queue.len() >= self.queue_capacity {
            return Err(AdmissionError::QueueFull { limit: self.queue_capacity });
        }
        let tenant = core.spec.tenant;
        let queued = g.queue.iter().filter(|j| j.core.spec.tenant == tenant).count();
        if queued >= self.max_queued_per_tenant {
            return Err(AdmissionError::TenantQueueFull {
                tenant,
                limit: self.max_queued_per_tenant,
            });
        }
        g.queue.push_back(Queued { core, not_before: None });
        drop(g);
        self.cv.notify_all();
        Ok(())
    }

    /// Re-queue an already-admitted job for another attempt after `delay`.
    /// Bypasses quotas, capacity, and the shutdown gate (graceful drain must
    /// still finish admitted work); marks the job solo so the fresh attempt
    /// can never rejoin its old batch.
    pub fn requeue(&self, core: Arc<JobCore>, delay: Duration) {
        core.solo.store(true, Ordering::Relaxed);
        core.set_status(JobStatus::Queued);
        let mut g = self.lock();
        g.queue.push_back(Queued { core, not_before: Some(Instant::now() + delay) });
        drop(g);
        self.cv.notify_all();
    }

    /// Remove `core` from the queue if it is still waiting. Running jobs
    /// cannot be cancelled: their group executes collectives in lockstep
    /// and pulling one rank out would wedge the others. The queue lock makes
    /// cancel-vs-claim exactly-once: whichever side removes the entry wins.
    pub fn cancel(&self, core: &Arc<JobCore>) -> bool {
        let mut g = self.lock();
        let Some(pos) = g.queue.iter().position(|j| Arc::ptr_eq(&j.core, core)) else {
            return false;
        };
        g.queue.remove(pos);
        drop(g);
        core.set_status(JobStatus::Cancelled);
        true
    }

    /// Block until work is available, then claim the first eligible job plus
    /// every queued same-key batchable twin (up to `max_batch`). Expired
    /// deadlines are failed in passing; pressured claims run solo. Returns
    /// `None` once the service is shut down *and* the queue is drained —
    /// shutdown is graceful; admitted jobs still run.
    pub fn next_batch(&self) -> Option<Vec<Arc<JobCore>>> {
        let mut g = self.lock();
        loop {
            let now = Instant::now();

            // Deadline sweep: fail every queued job whose deadline already
            // passed. Collect first, fail outside the queue scan.
            let mut expired = Vec::new();
            let mut i = 0;
            while i < g.queue.len() {
                let past = g.queue[i].core.deadline().is_some_and(|d| d <= now);
                if past {
                    expired.push(g.queue.remove(i).expect("index in range").core);
                } else {
                    i += 1;
                }
            }
            if !expired.is_empty() {
                drop(g);
                for core in expired {
                    obskit::add_serve_deadline_miss();
                    core.fail("deadline expired while queued".into(), true);
                }
                g = self.lock();
                continue; // re-scan under a fresh lock
            }

            if let Some(pos) = g.queue.iter().position(|j| j.eligible(now)) {
                let head = g.queue.remove(pos).expect("index in range").core;
                let pressured = head
                    .deadline()
                    .is_some_and(|d| d.saturating_duration_since(now) < self.pressure_window);
                if pressured {
                    head.pressured.store(true, Ordering::Relaxed);
                }
                let mut batch = vec![head];
                // A solo head (fault plan, retry, probe, pressured) runs
                // alone; otherwise absorb queued batchable twins so the
                // whole batch shares one Hamiltonian build.
                if batch[0].batchable() && !pressured {
                    let key = batch[0].key;
                    let mut i = 0;
                    while i < g.queue.len() && batch.len() < self.max_batch {
                        let j = &g.queue[i];
                        if j.core.key == key && j.core.batchable() && j.eligible(now) {
                            batch.push(g.queue.remove(i).expect("index in range").core);
                        } else {
                            i += 1;
                        }
                    }
                }
                drop(g);
                for job in &batch {
                    job.set_running();
                }
                return Some(batch);
            }

            if g.queue.is_empty() && g.shutdown {
                return None;
            }
            // Nothing eligible: sleep until the earliest backoff expires (or
            // a submit/requeue/shutdown wakes us).
            let next_ready = g
                .queue
                .iter()
                .filter_map(|j| j.not_before)
                .min()
                .map(|t| t.saturating_duration_since(now));
            match next_ready {
                Some(wait) if !wait.is_zero() => {
                    let (guard, _) = self
                        .cv
                        .wait_timeout(g, wait)
                        .unwrap_or_else(|p| p.into_inner());
                    g = guard;
                }
                Some(_) => {} // backoff just expired: loop re-scans
                None => g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner()),
            }
        }
    }

    /// Refuse new work and wake every blocked leader. Already-queued jobs
    /// still execute (graceful drain).
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.cv.notify_all();
    }

    /// Jobs currently waiting (all tenants).
    pub fn queued_len(&self) -> usize {
        self.lock().queue.len()
    }

    /// Jobs currently waiting for one tenant.
    pub fn queued_for(&self, tenant: TenantId) -> usize {
        self.lock().queue.iter().filter(|j| j.core.spec.tenant == tenant).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobOutcome, JobSpec};
    use lrtddft::synthetic_problem;

    fn sched(max_per_tenant: usize, capacity: usize, max_batch: usize) -> SchedulerState {
        SchedulerState::new(max_per_tenant, capacity, max_batch, Duration::from_millis(50))
    }

    fn spec(tenant: TenantId, n_c: usize) -> JobSpec {
        JobSpec::new(tenant, Arc::new(synthetic_problem([8, 8, 8], 6.0, 2, n_c)))
    }

    fn outcome_of(core: &Arc<JobCore>) -> JobOutcome {
        let g = core.inner.lock().unwrap();
        match g.status {
            JobStatus::Failed => {
                let f = g.failure.as_ref().unwrap();
                if f.deadline_exceeded {
                    JobOutcome::DeadlineExceeded { waited: f.waited }
                } else {
                    JobOutcome::Failed { error: f.error.clone(), attempts: g.attempts }
                }
            }
            ref s => panic!("not failed: {s:?}"),
        }
    }

    #[test]
    fn quota_and_capacity_are_enforced() {
        let s = sched(2, 3, 8);
        assert!(s.submit(JobCore::new(spec(1, 2))).is_ok());
        assert!(s.submit(JobCore::new(spec(1, 2))).is_ok());
        assert_eq!(
            s.submit(JobCore::new(spec(1, 2))),
            Err(AdmissionError::TenantQueueFull { tenant: 1, limit: 2 })
        );
        assert!(s.submit(JobCore::new(spec(2, 2))).is_ok()); // other tenant fine
        assert_eq!(
            s.submit(JobCore::new(spec(3, 2))),
            Err(AdmissionError::QueueFull { limit: 3 })
        );
        assert_eq!(s.queued_len(), 3);
        assert_eq!(s.queued_for(1), 2);
    }

    #[test]
    fn next_batch_groups_same_key_jobs_and_leaves_others() {
        let s = sched(8, 64, 8);
        s.submit(JobCore::new(spec(1, 2))).unwrap();
        s.submit(JobCore::new(spec(2, 3))).unwrap(); // different structure
        s.submit(JobCore::new(spec(3, 2))).unwrap(); // same key as head
        let batch = s.next_batch().unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].spec.tenant, 1);
        assert_eq!(batch[1].spec.tenant, 3);
        assert!(batch.iter().all(|j| j.key == batch[0].key));
        assert!(batch.iter().all(|j| j.attempts() == 1), "claim counts an attempt");
        // The mismatched job is untouched and next in line.
        let rest = s.next_batch().unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].spec.tenant, 2);
    }

    #[test]
    fn max_batch_caps_the_claim() {
        let s = sched(64, 64, 2);
        for t in 0..4 {
            s.submit(JobCore::new(spec(t, 2))).unwrap();
        }
        assert_eq!(s.next_batch().unwrap().len(), 2);
        assert_eq!(s.next_batch().unwrap().len(), 2);
    }

    #[test]
    fn faulted_jobs_never_share_a_batch() {
        let s = sched(8, 64, 8);
        let faulted = spec(1, 2).with_fault_plan(
            faultkit::FaultPlan::new(7).with("par.v_tilde", 0, faultkit::FaultKind::NanPoison),
        );
        s.submit(JobCore::new(faulted)).unwrap();
        s.submit(JobCore::new(spec(2, 2))).unwrap(); // same structure, clean
        let first = s.next_batch().unwrap();
        assert_eq!(first.len(), 1, "faulted head must run solo");
        let second = s.next_batch().unwrap();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].spec.tenant, 2);
    }

    #[test]
    fn clean_head_skips_queued_faulted_twin() {
        let s = sched(8, 64, 8);
        s.submit(JobCore::new(spec(1, 2))).unwrap();
        let faulted = spec(2, 2).with_fault_plan(
            faultkit::FaultPlan::new(7).with("par.v_tilde", 0, faultkit::FaultKind::NanPoison),
        );
        s.submit(JobCore::new(faulted)).unwrap();
        s.submit(JobCore::new(spec(3, 2))).unwrap();
        let batch = s.next_batch().unwrap();
        assert_eq!(batch.len(), 2, "clean twins batch around the faulted job");
        assert_eq!(batch[1].spec.tenant, 3);
    }

    #[test]
    fn cancel_only_works_while_queued() {
        let s = sched(8, 64, 8);
        let core = JobCore::new(spec(1, 2));
        s.submit(core.clone()).unwrap();
        let claimed = s.next_batch().unwrap();
        assert!(Arc::ptr_eq(&claimed[0], &core));
        assert!(!s.cancel(&core), "claimed job is not cancellable");

        let core2 = JobCore::new(spec(1, 2));
        s.submit(core2.clone()).unwrap();
        assert!(s.cancel(&core2));
        assert_eq!(s.queued_len(), 0);
        let g = core2.inner.lock().unwrap();
        assert_eq!(g.status, JobStatus::Cancelled);
    }

    #[test]
    fn shutdown_drains_then_returns_none() {
        let s = sched(8, 64, 8);
        s.submit(JobCore::new(spec(1, 2))).unwrap();
        s.shutdown();
        assert_eq!(s.submit(JobCore::new(spec(2, 2))), Err(AdmissionError::ShuttingDown));
        assert!(s.next_batch().is_some(), "queued work survives shutdown");
        assert!(s.next_batch().is_none());
    }

    #[test]
    fn expired_deadline_fails_at_claim_time_without_occupying_a_group() {
        let before = obskit::serve_counters().deadline_miss;
        let s = sched(8, 64, 8);
        let dead = JobCore::new(spec(1, 2).with_deadline(Duration::ZERO));
        let live = JobCore::new(spec(2, 3));
        s.submit(dead.clone()).unwrap();
        s.submit(live.clone()).unwrap();
        let batch = s.next_batch().unwrap();
        assert_eq!(batch.len(), 1);
        assert!(Arc::ptr_eq(&batch[0], &live), "expired job never reaches a group");
        match outcome_of(&dead) {
            JobOutcome::DeadlineExceeded { .. } => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // Counters are process-global; other tests may bump them too.
        assert!(obskit::serve_counters().deadline_miss > before);
    }

    #[test]
    fn pressured_claim_runs_solo_and_is_flagged() {
        let s = sched(8, 64, 8);
        // 20ms of budget < the 50ms pressure window, but not yet expired.
        let tight = JobCore::new(spec(1, 2).with_deadline(Duration::from_millis(20)));
        let twin = JobCore::new(spec(2, 2)); // same key, would normally batch
        s.submit(tight.clone()).unwrap();
        s.submit(twin.clone()).unwrap();
        let batch = s.next_batch().unwrap();
        assert_eq!(batch.len(), 1, "pressured job must not drag twins into a degrade");
        assert!(Arc::ptr_eq(&batch[0], &tight));
        assert!(tight.pressured.load(Ordering::Relaxed));
        assert!(!twin.pressured.load(Ordering::Relaxed));
    }

    #[test]
    fn requeued_job_waits_out_backoff_and_runs_solo() {
        let s = sched(8, 64, 8);
        let retry = JobCore::new(spec(1, 2));
        s.submit(retry.clone()).unwrap();
        assert_eq!(s.next_batch().unwrap().len(), 1);
        s.requeue(retry.clone(), Duration::from_millis(30));
        // A same-key twin submitted after the requeue is claimed first: the
        // retry is still backing off, and when it runs it must be solo.
        let twin = JobCore::new(spec(2, 2));
        s.submit(twin.clone()).unwrap();
        let first = s.next_batch().unwrap();
        assert_eq!(first.len(), 1);
        assert!(Arc::ptr_eq(&first[0], &twin), "backing-off retry is skipped");
        let start = Instant::now();
        let second = s.next_batch().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(25), "waited out the backoff");
        assert_eq!(second.len(), 1);
        assert!(Arc::ptr_eq(&second[0], &retry));
        assert_eq!(retry.attempts(), 2, "requeue + reclaim is a second attempt");
        assert!(!retry.batchable(), "retries stay solo");
    }

    #[test]
    fn concurrent_submit_during_drain_never_hangs_and_loses_no_job() {
        // Race 8 submitter threads against shutdown: every submit either
        // lands (and is later claimed) or gets the typed ShuttingDown error;
        // the drain accounts for exactly the accepted jobs.
        for round in 0..20 {
            let s = Arc::new(sched(64, 64, 1));
            let accepted = Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let submitters: Vec<_> = (0..8u64)
                .map(|t| {
                    let s = Arc::clone(&s);
                    let accepted = Arc::clone(&accepted);
                    std::thread::spawn(move || match s.submit(JobCore::new(spec(t, 2))) {
                        Ok(()) => {
                            accepted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(AdmissionError::ShuttingDown) => {}
                        Err(e) => panic!("unexpected admission error: {e}"),
                    })
                })
                .collect();
            if round % 2 == 0 {
                std::thread::yield_now();
            }
            s.shutdown();
            for t in submitters {
                t.join().unwrap();
            }
            let mut claimed = 0;
            while let Some(batch) = s.next_batch() {
                claimed += batch.len();
            }
            assert_eq!(claimed, accepted.load(Ordering::Relaxed));
        }
    }

    #[test]
    fn cancel_racing_claim_is_exactly_once() {
        for _ in 0..50 {
            let s = Arc::new(sched(8, 64, 8));
            let core = JobCore::new(spec(1, 2));
            s.submit(core.clone()).unwrap();
            // Shutdown first so the claimer returns None instead of blocking
            // when cancel wins the race.
            s.shutdown();
            let claimer = {
                let s = Arc::clone(&s);
                std::thread::spawn(move || s.next_batch().is_some())
            };
            let cancelled = s.cancel(&core);
            let claimed = claimer.join().unwrap();
            assert!(
                cancelled ^ claimed,
                "exactly one side must win (cancelled={cancelled}, claimed={claimed})"
            );
            let status = core.inner.lock().unwrap().status.clone();
            if cancelled {
                assert_eq!(status, JobStatus::Cancelled);
            } else {
                assert_eq!(status, JobStatus::Running);
            }
        }
    }

    #[test]
    fn requeue_bypasses_shutdown_gate_for_graceful_drain() {
        let s = sched(8, 64, 8);
        let core = JobCore::new(spec(1, 2));
        s.submit(core.clone()).unwrap();
        assert_eq!(s.next_batch().unwrap().len(), 1);
        s.shutdown();
        s.requeue(core.clone(), Duration::ZERO);
        let batch = s.next_batch().expect("admitted retry drains after shutdown");
        assert!(Arc::ptr_eq(&batch[0], &core));
        assert!(s.next_batch().is_none());
    }
}
