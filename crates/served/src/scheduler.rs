//! Admission-controlled job queue with per-tenant quotas and same-shape
//! batching.
//!
//! One `SchedulerState` is shared by every solver-group leader: leaders
//! block in [`SchedulerState::next_batch`], and whichever leader wins the
//! lock claims the head-of-line job plus up to `max_batch - 1` queued jobs
//! with the same [`BatchKey`] — those share one distributed Hamiltonian
//! build. Jobs carrying a fault plan are always claimed solo so an injected
//! fault can never ride along with another tenant's work.

use crate::job::{AdmissionError, JobCore, JobStatus, TenantId};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

struct QueueInner {
    queue: VecDeque<Arc<JobCore>>,
    shutdown: bool,
}

/// Shared scheduler core: the admission queue plus its quota knobs.
pub(crate) struct SchedulerState {
    inner: Mutex<QueueInner>,
    cv: Condvar,
    /// Max jobs one tenant may have queued at once.
    pub max_queued_per_tenant: usize,
    /// Max jobs queued across all tenants.
    pub queue_capacity: usize,
    /// Max same-shape jobs per shared-build batch.
    pub max_batch: usize,
}

impl SchedulerState {
    pub fn new(max_queued_per_tenant: usize, queue_capacity: usize, max_batch: usize) -> Self {
        SchedulerState {
            inner: Mutex::new(QueueInner { queue: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
            max_queued_per_tenant,
            queue_capacity,
            max_batch: max_batch.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Admit `core` to the queue, enforcing shutdown, global capacity, and
    /// the per-tenant quota (in that order).
    pub fn submit(&self, core: Arc<JobCore>) -> Result<(), AdmissionError> {
        let mut g = self.lock();
        if g.shutdown {
            return Err(AdmissionError::ShuttingDown);
        }
        if g.queue.len() >= self.queue_capacity {
            return Err(AdmissionError::QueueFull { limit: self.queue_capacity });
        }
        let tenant = core.spec.tenant;
        let queued = g.queue.iter().filter(|j| j.spec.tenant == tenant).count();
        if queued >= self.max_queued_per_tenant {
            return Err(AdmissionError::TenantQueueFull {
                tenant,
                limit: self.max_queued_per_tenant,
            });
        }
        g.queue.push_back(core);
        drop(g);
        self.cv.notify_all();
        Ok(())
    }

    /// Remove `core` from the queue if it is still waiting. Running jobs
    /// cannot be cancelled: their group executes collectives in lockstep
    /// and pulling one rank out would wedge the others.
    pub fn cancel(&self, core: &Arc<JobCore>) -> bool {
        let mut g = self.lock();
        let Some(pos) = g.queue.iter().position(|j| Arc::ptr_eq(j, core)) else {
            return false;
        };
        g.queue.remove(pos);
        drop(g);
        core.set_status(JobStatus::Cancelled);
        true
    }

    /// Block until work is available, then claim the head-of-line job plus
    /// every queued same-key fault-free job (up to `max_batch`). Returns
    /// `None` once the service is shut down *and* the queue is drained —
    /// shutdown is graceful; admitted jobs still run.
    pub fn next_batch(&self) -> Option<Vec<Arc<JobCore>>> {
        let mut g = self.lock();
        loop {
            if let Some(head) = g.queue.pop_front() {
                let mut batch = vec![head];
                // A faulted head runs solo; fault-free heads absorb queued
                // twins so the whole batch shares one Hamiltonian build.
                if batch[0].spec.fault.is_none() {
                    let key = batch[0].key;
                    let mut i = 0;
                    while i < g.queue.len() && batch.len() < self.max_batch {
                        if g.queue[i].key == key && g.queue[i].spec.fault.is_none() {
                            batch.push(g.queue.remove(i).expect("index in range"));
                        } else {
                            i += 1;
                        }
                    }
                }
                drop(g);
                for job in &batch {
                    job.set_status(JobStatus::Running);
                }
                return Some(batch);
            }
            if g.shutdown {
                return None;
            }
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Refuse new work and wake every blocked leader. Already-queued jobs
    /// still execute (graceful drain).
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.cv.notify_all();
    }

    /// Jobs currently waiting (all tenants).
    pub fn queued_len(&self) -> usize {
        self.lock().queue.len()
    }

    /// Jobs currently waiting for one tenant.
    pub fn queued_for(&self, tenant: TenantId) -> usize {
        self.lock().queue.iter().filter(|j| j.spec.tenant == tenant).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use lrtddft::synthetic_problem;

    fn spec(tenant: TenantId, n_c: usize) -> JobSpec {
        JobSpec::new(tenant, Arc::new(synthetic_problem([8, 8, 8], 6.0, 2, n_c)))
    }

    #[test]
    fn quota_and_capacity_are_enforced() {
        let s = SchedulerState::new(2, 3, 8);
        assert!(s.submit(JobCore::new(spec(1, 2))).is_ok());
        assert!(s.submit(JobCore::new(spec(1, 2))).is_ok());
        assert_eq!(
            s.submit(JobCore::new(spec(1, 2))),
            Err(AdmissionError::TenantQueueFull { tenant: 1, limit: 2 })
        );
        assert!(s.submit(JobCore::new(spec(2, 2))).is_ok()); // other tenant fine
        assert_eq!(
            s.submit(JobCore::new(spec(3, 2))),
            Err(AdmissionError::QueueFull { limit: 3 })
        );
        assert_eq!(s.queued_len(), 3);
        assert_eq!(s.queued_for(1), 2);
    }

    #[test]
    fn next_batch_groups_same_key_jobs_and_leaves_others() {
        let s = SchedulerState::new(8, 64, 8);
        s.submit(JobCore::new(spec(1, 2))).unwrap();
        s.submit(JobCore::new(spec(2, 3))).unwrap(); // different structure
        s.submit(JobCore::new(spec(3, 2))).unwrap(); // same key as head
        let batch = s.next_batch().unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].spec.tenant, 1);
        assert_eq!(batch[1].spec.tenant, 3);
        assert!(batch.iter().all(|j| j.key == batch[0].key));
        // The mismatched job is untouched and next in line.
        let rest = s.next_batch().unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].spec.tenant, 2);
    }

    #[test]
    fn max_batch_caps_the_claim() {
        let s = SchedulerState::new(64, 64, 2);
        for t in 0..4 {
            s.submit(JobCore::new(spec(t, 2))).unwrap();
        }
        assert_eq!(s.next_batch().unwrap().len(), 2);
        assert_eq!(s.next_batch().unwrap().len(), 2);
    }

    #[test]
    fn faulted_jobs_never_share_a_batch() {
        let s = SchedulerState::new(8, 64, 8);
        let faulted = spec(1, 2).with_fault_plan(
            faultkit::FaultPlan::new(7).with("par.v_tilde", 0, faultkit::FaultKind::NanPoison),
        );
        s.submit(JobCore::new(faulted)).unwrap();
        s.submit(JobCore::new(spec(2, 2))).unwrap(); // same structure, clean
        let first = s.next_batch().unwrap();
        assert_eq!(first.len(), 1, "faulted head must run solo");
        let second = s.next_batch().unwrap();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].spec.tenant, 2);
    }

    #[test]
    fn clean_head_skips_queued_faulted_twin() {
        let s = SchedulerState::new(8, 64, 8);
        s.submit(JobCore::new(spec(1, 2))).unwrap();
        let faulted = spec(2, 2).with_fault_plan(
            faultkit::FaultPlan::new(7).with("par.v_tilde", 0, faultkit::FaultKind::NanPoison),
        );
        s.submit(JobCore::new(faulted)).unwrap();
        s.submit(JobCore::new(spec(3, 2))).unwrap();
        let batch = s.next_batch().unwrap();
        assert_eq!(batch.len(), 2, "clean twins batch around the faulted job");
        assert_eq!(batch[1].spec.tenant, 3);
    }

    #[test]
    fn cancel_only_works_while_queued() {
        let s = SchedulerState::new(8, 64, 8);
        let core = JobCore::new(spec(1, 2));
        s.submit(core.clone()).unwrap();
        let claimed = s.next_batch().unwrap();
        assert!(Arc::ptr_eq(&claimed[0], &core));
        assert!(!s.cancel(&core), "claimed job is not cancellable");

        let core2 = JobCore::new(spec(1, 2));
        s.submit(core2.clone()).unwrap();
        assert!(s.cancel(&core2));
        assert_eq!(s.queued_len(), 0);
        let g = core2.inner.lock().unwrap();
        assert_eq!(g.status, JobStatus::Cancelled);
    }

    #[test]
    fn shutdown_drains_then_returns_none() {
        let s = SchedulerState::new(8, 64, 8);
        s.submit(JobCore::new(spec(1, 2))).unwrap();
        s.shutdown();
        assert_eq!(s.submit(JobCore::new(spec(2, 2))), Err(AdmissionError::ShuttingDown));
        assert!(s.next_batch().is_some(), "queued work survives shutdown");
        assert!(s.next_batch().is_none());
    }
}
