//! # served — solve-as-a-service over split communicators
//!
//! A multi-tenant job scheduler for the LR-TDDFT suite. One [`Service`]
//! owns a pool of thread-ranks, partitions it into disjoint solver groups
//! with `Comm::split`, and runs an admission-controlled queue in front of
//! them:
//!
//! - **Admission control** — per-tenant quotas and a global queue cap,
//!   surfaced as typed [`AdmissionError`]s at submit time.
//! - **Same-shape batching** — queued jobs with the same [`BatchKey`]
//!   (structure hash, resolved ISDF rank, seed, schedule) share one
//!   distributed Hamiltonian build; each job keeps its own eigensolve, so
//!   results stay bitwise identical to solo runs.
//! - **Result caching** — completed fault-free solves are cached by
//!   structure hash + solve parameters with a TTL; repeat submissions
//!   complete at admission without touching a solver group.
//! - **Tenant isolation** — every job runs under its tenant's obskit trace
//!   scope, and a tenant's injected fault plan ([`JobSpec::with_fault_plan`])
//!   is armed only around that job's own execution window on the ranks that
//!   run it. Faulted jobs are never co-batched and bypass the cache.
//!
//! ```no_run
//! use served::{JobSpec, ServeConfig, Service};
//! use lrtddft::{synthetic_problem, Solver};
//! use std::sync::Arc;
//!
//! let service = Service::start(ServeConfig::default()); // 4 ranks, 2 groups
//! let problem = Arc::new(synthetic_problem([12, 12, 12], 8.0, 4, 4));
//! let job = JobSpec::new(42, problem).with_solver(Solver::builder().n_states(3).build());
//! let handle = service.submit(job).expect("admitted");
//! let result = handle.wait().expect("completed");
//! println!("lowest excitations: {:?}", result.values);
//! service.shutdown();
//! ```
//!
//! Scope: per-job [`Solver`](lrtddft::Solver) options that feed the solve
//! (`rank`, `seed`, `n_states`, `eigensolver`, `lobpcg`, `pipelined`) are
//! honored per job. The process-wide runtime knobs (`kernel`, `fusion`) are
//! deliberately **not** flipped per job — they are global switches shared
//! by every tenant; set them once before `Service::start` if needed.

mod cache;
mod job;
mod resilience;
mod scheduler;
mod service;

pub use cache::CacheStats;
pub use job::{
    structure_hash, AdmissionError, BatchKey, CacheKey, JobHandle, JobOutcome, JobResult, JobSpec,
    JobStatus, TenantId,
};
pub use resilience::ResilienceConfig;
pub use service::{ServeConfig, Service};

#[cfg(test)]
pub(crate) mod testsync {
    use std::sync::{Mutex, MutexGuard};

    /// The faultkit solve-error hook and the `serve.group_unhealthy`
    /// counter are process-global; stall-detector tests serialize here.
    static STALL: Mutex<()> = Mutex::new(());

    pub fn stall_exclusive() -> MutexGuard<'static, ()> {
        STALL.lock().unwrap_or_else(|p| p.into_inner())
    }
}
