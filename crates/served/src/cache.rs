//! Bounded TTL result cache keyed by structure hash + solve parameters.
//!
//! A hit means some tenant already paid for a bitwise-identical solve
//! (same structure, same build inputs, same eigensolve knobs — see
//! [`crate::job::CacheKey`]), so the job completes at submission without
//! touching a solver group. Faulted jobs bypass the cache entirely, in both
//! directions: they are never served from it and never populate it; the
//! same holds for degraded results and breaker probes (the cache key does
//! not encode the degradation ladder, so a degraded answer under a clean
//! key would poison later full-cost lookups).
//!
//! The cache is bounded two ways: entries older than the TTL are purged on
//! every insert (a quiet cache cannot hoard dead entries), and a hard
//! capacity evicts the least-recently-used live entry once full.

use crate::job::CacheKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

struct Entry {
    values: Vec<f64>,
    inserted: Instant,
    /// Logical timestamp of the last hit (or the insert); smallest = LRU.
    last_used: u64,
}

struct CacheInner {
    map: HashMap<CacheKey, Entry>,
    /// Monotonic use counter backing `last_used`.
    tick: u64,
}

pub(crate) struct ResultCache {
    ttl: Duration,
    /// Max live entries; inserting into a full cache evicts the LRU entry.
    capacity: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Cache counters, snapshot via [`crate::Service::cache_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
    /// Entries removed to make room (LRU) or purged past their TTL.
    pub evictions: u64,
}

impl ResultCache {
    pub fn new(ttl: Duration, capacity: usize) -> Self {
        ResultCache {
            ttl,
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner { map: HashMap::new(), tick: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look `key` up; a hit refreshes its LRU position. Expired entries
    /// count as misses and are evicted.
    pub fn get(&self, key: &CacheKey) -> Option<Vec<f64>> {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        g.tick += 1;
        let tick = g.tick;
        if let Some(e) = g.map.get_mut(key) {
            if e.inserted.elapsed() <= self.ttl {
                e.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(e.values.clone());
            }
            g.map.remove(key);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Insert (or refresh) `key`. Later writers win; values for one key are
    /// bitwise identical by construction, so the race is benign. Every
    /// insert first purges expired entries, then — if still at capacity —
    /// evicts the least-recently-used live entry.
    pub fn put(&self, key: CacheKey, values: Vec<f64>) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        g.tick += 1;
        let tick = g.tick;

        let before = g.map.len();
        g.map.retain(|_, e| e.inserted.elapsed() <= self.ttl);
        let purged = before - g.map.len();
        if purged > 0 {
            self.evictions.fetch_add(purged as u64, Ordering::Relaxed);
        }

        if g.map.len() >= self.capacity && !g.map.contains_key(&key) {
            // O(n) scan is fine at serving-cache sizes (hundreds).
            if let Some(lru) = g
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                g.map.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        g.map.insert(key, Entry { values, inserted: Instant::now(), last_used: tick });
    }

    pub fn stats(&self) -> CacheStats {
        let entries = self.inner.lock().unwrap_or_else(|p| p.into_inner()).map.len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{cache_key, JobSpec};
    use lrtddft::synthetic_problem;
    use std::sync::Arc;

    fn key_for(n_states: usize) -> CacheKey {
        let solver = lrtddft::Solver::builder().n_states(n_states).build();
        let spec = JobSpec::new(1, Arc::new(synthetic_problem([8, 8, 8], 6.0, 2, 2)))
            .with_solver(solver);
        cache_key(&spec)
    }

    #[test]
    fn round_trip_and_stats() {
        let cache = ResultCache::new(Duration::from_secs(60), 16);
        let key = key_for(3);
        assert!(cache.get(&key).is_none());
        cache.put(key, vec![0.1, 0.2]);
        assert_eq!(cache.get(&key), Some(vec![0.1, 0.2]));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.evictions), (1, 1, 1, 0));
    }

    #[test]
    fn expired_entries_are_evicted() {
        let cache = ResultCache::new(Duration::ZERO, 16);
        let key = key_for(3);
        cache.put(key, vec![1.0]);
        std::thread::sleep(Duration::from_millis(2));
        assert!(cache.get(&key).is_none(), "zero TTL expires immediately");
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = ResultCache::new(Duration::from_secs(60), 2);
        let (a, b, c) = (key_for(1), key_for(2), key_for(3));
        cache.put(a, vec![1.0]);
        cache.put(b, vec![2.0]);
        // Touch `a` so `b` becomes LRU, then overflow.
        assert!(cache.get(&a).is_some());
        cache.put(c, vec![3.0]);
        assert_eq!(cache.stats().entries, 2);
        assert!(cache.get(&a).is_some(), "recently-used entry survives");
        assert!(cache.get(&c).is_some(), "new entry present");
        assert!(cache.get(&b).is_none(), "LRU entry evicted");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn insert_purges_expired_before_evicting_live() {
        let cache = ResultCache::new(Duration::from_millis(10), 2);
        let (a, b, c) = (key_for(1), key_for(2), key_for(3));
        cache.put(a, vec![1.0]);
        std::thread::sleep(Duration::from_millis(15));
        cache.put(b, vec![2.0]); // purges expired `a` in passing
        cache.put(c, vec![3.0]); // fits without touching live `b`
        assert!(cache.get(&b).is_some(), "live entry kept: expired one made room");
        assert!(cache.get(&c).is_some());
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().evictions, 1, "only the expired entry was dropped");
    }

    #[test]
    fn refreshing_existing_key_does_not_evict() {
        let cache = ResultCache::new(Duration::from_secs(60), 2);
        let (a, b) = (key_for(1), key_for(2));
        cache.put(a, vec![1.0]);
        cache.put(b, vec![2.0]);
        cache.put(a, vec![1.0]); // refresh in place at capacity
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().evictions, 0);
        assert!(cache.get(&b).is_some());
    }
}
