//! TTL result cache keyed by structure hash + solve parameters.
//!
//! A hit means some tenant already paid for a bitwise-identical solve
//! (same structure, same build inputs, same eigensolve knobs — see
//! [`crate::job::CacheKey`]), so the job completes at submission without
//! touching a solver group. Faulted jobs bypass the cache entirely, in both
//! directions: they are never served from it and never populate it.

use crate::job::CacheKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

struct Entry {
    values: Vec<f64>,
    inserted: Instant,
}

pub(crate) struct ResultCache {
    ttl: Duration,
    inner: Mutex<HashMap<CacheKey, Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Hit/miss counters, snapshot via [`crate::Service::cache_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
}

impl ResultCache {
    pub fn new(ttl: Duration) -> Self {
        ResultCache {
            ttl,
            inner: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look `key` up; expired entries count as misses and are evicted.
    pub fn get(&self, key: &CacheKey) -> Option<Vec<f64>> {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(e) = g.get(key) {
            if e.inserted.elapsed() <= self.ttl {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(e.values.clone());
            }
            g.remove(key);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Insert (or refresh) `key`. Later writers win; values for one key are
    /// bitwise identical by construction, so the race is benign.
    pub fn put(&self, key: CacheKey, values: Vec<f64>) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        g.insert(key, Entry { values, inserted: Instant::now() });
    }

    pub fn stats(&self) -> CacheStats {
        let entries = self.inner.lock().unwrap_or_else(|p| p.into_inner()).len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{cache_key, JobSpec};
    use lrtddft::synthetic_problem;
    use std::sync::Arc;

    #[test]
    fn round_trip_and_stats() {
        let cache = ResultCache::new(Duration::from_secs(60));
        let spec = JobSpec::new(1, Arc::new(synthetic_problem([8, 8, 8], 6.0, 2, 2)));
        let key = cache_key(&spec);
        assert!(cache.get(&key).is_none());
        cache.put(key, vec![0.1, 0.2]);
        assert_eq!(cache.get(&key), Some(vec![0.1, 0.2]));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn expired_entries_are_evicted() {
        let cache = ResultCache::new(Duration::ZERO);
        let spec = JobSpec::new(1, Arc::new(synthetic_problem([8, 8, 8], 6.0, 2, 2)));
        let key = cache_key(&spec);
        cache.put(key, vec![1.0]);
        std::thread::sleep(Duration::from_millis(2));
        assert!(cache.get(&key).is_none(), "zero TTL expires immediately");
        assert_eq!(cache.stats().entries, 0);
    }
}
