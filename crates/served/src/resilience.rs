//! Service-level resilience policies: retry/backoff, per-tenant circuit
//! breakers, and solver-group health tracking.
//!
//! Everything here is deliberately deterministic-friendly: the retry jitter
//! is seeded (SplitMix64 over `seed ^ tenant ^ attempt`, the same generator
//! family faultkit and the K-Means seeding use), breaker transitions are
//! driven by counted failures plus an explicit cooldown, and the stall
//! detector compares a leader-owned heartbeat against a configured timeout —
//! so a chaos campaign re-run under the same seed takes the same decisions.
//!
//! The deadline/backoff arithmetic mirrors [`parcomm`]'s `RetryPolicy`
//! (bounded attempts, per-attempt backoff growing with the attempt index);
//! it lives here rather than reusing that type because job backoff delays
//! re-*queueing* (scheduler side), not re-*polling* (request side).

use crate::job::TenantId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Resilience policy knobs, one copy per [`crate::ServeConfig`].
#[derive(Clone, Copy, Debug)]
pub struct ResilienceConfig {
    /// Total execution attempts per job (1 = no retries). A recoverable
    /// failure with budget left re-queues the job (solo, after backoff);
    /// without budget it fails terminally.
    pub retry_max_attempts: u32,
    /// Base re-queue delay; attempt `k`'s delay is `base · 2^(k-1)` plus
    /// seeded jitter in `[0, base)`.
    pub retry_backoff: Duration,
    /// Jitter seed. Same seed + same tenant + same attempt ⇒ same delay.
    pub retry_jitter_seed: u64,
    /// Consecutive terminal failures that open a tenant's breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker sheds load before admitting one half-open
    /// probe.
    pub breaker_cooldown: Duration,
    /// Deadline pressure window: a job claimed with less than this much
    /// budget remaining is downgraded (degradation ladder) instead of run
    /// at full cost.
    pub pressure_window: Duration,
    /// Leader heartbeat staleness after which a busy group is marked
    /// unhealthy.
    pub stall_timeout: Duration,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            retry_max_attempts: 3,
            retry_backoff: Duration::from_millis(2),
            retry_jitter_seed: 0x5eed,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_millis(200),
            pressure_window: Duration::from_millis(50),
            stall_timeout: Duration::from_secs(2),
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic exponential backoff with seeded jitter: attempt `k`
/// (1-based count of attempts already made) waits `base · 2^(k-1) + jitter`,
/// jitter uniform in `[0, base)` from SplitMix64 over
/// `seed ^ tenant ^ attempt`.
pub(crate) fn retry_delay(cfg: &ResilienceConfig, tenant: TenantId, attempt: u32) -> Duration {
    let base = cfg.retry_backoff;
    let exp = base.saturating_mul(1u32 << (attempt.saturating_sub(1)).min(16));
    let jitter_ns = if base.is_zero() {
        0
    } else {
        splitmix64(cfg.retry_jitter_seed ^ tenant ^ u64::from(attempt)) % base.as_nanos() as u64
    };
    exp + Duration::from_nanos(jitter_ns)
}

/// What the breaker says about an admission attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Admit {
    /// Breaker closed (or no history): admit normally.
    Normal,
    /// Breaker was open and the cooldown elapsed: admit exactly this job as
    /// the half-open probe (runs solo, bypasses the cache, may be degraded).
    Probe,
}

enum BreakerPhase {
    Closed,
    Open { since: Instant },
    /// One probe is in flight; everything else is shed until it resolves.
    HalfOpen,
}

struct BreakerState {
    phase: BreakerPhase,
    consecutive_failures: u32,
}

/// Per-tenant circuit breakers: closed → open after `breaker_threshold`
/// consecutive terminal failures → (cooldown) → half-open, admitting one
/// probe → closed on success, re-open on failure. Retried-then-solved and
/// degraded-but-solved both count as success; only terminal failures trip
/// the breaker.
pub(crate) struct Breakers {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<HashMap<TenantId, BreakerState>>,
}

impl Breakers {
    pub fn new(cfg: &ResilienceConfig) -> Self {
        Breakers {
            threshold: cfg.breaker_threshold.max(1),
            cooldown: cfg.breaker_cooldown,
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Admission check. `Err(failures)` means shed the job (breaker open).
    pub fn admit(&self, tenant: TenantId) -> Result<Admit, u32> {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let Some(s) = g.get_mut(&tenant) else { return Ok(Admit::Normal) };
        match s.phase {
            BreakerPhase::Closed => Ok(Admit::Normal),
            BreakerPhase::Open { since } => {
                if since.elapsed() >= self.cooldown {
                    s.phase = BreakerPhase::HalfOpen;
                    Ok(Admit::Probe)
                } else {
                    Err(s.consecutive_failures)
                }
            }
            BreakerPhase::HalfOpen => Err(s.consecutive_failures),
        }
    }

    /// A job for `tenant` reached a successful terminal state.
    pub fn record_success(&self, tenant: TenantId) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(s) = g.get_mut(&tenant) {
            s.phase = BreakerPhase::Closed;
            s.consecutive_failures = 0;
        }
    }

    /// A job for `tenant` failed terminally. Returns `true` when this
    /// failure opened (or re-opened) the breaker; the caller counts the
    /// transition (`serve.breaker_open`).
    pub fn record_failure(&self, tenant: TenantId) -> bool {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let s = g.entry(tenant).or_insert(BreakerState {
            phase: BreakerPhase::Closed,
            consecutive_failures: 0,
        });
        s.consecutive_failures += 1;
        match s.phase {
            BreakerPhase::Closed if s.consecutive_failures >= self.threshold => {
                s.phase = BreakerPhase::Open { since: Instant::now() };
                true
            }
            // A failed half-open probe re-opens immediately.
            BreakerPhase::HalfOpen => {
                s.phase = BreakerPhase::Open { since: Instant::now() };
                true
            }
            _ => false,
        }
    }

    /// The admitted probe never started (its queue submission failed).
    /// Rewind half-open to open-with-expired-cooldown so the *next*
    /// admission attempt becomes the probe instead of shedding forever.
    pub fn abort_probe(&self, tenant: TenantId) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(s) = g.get_mut(&tenant) {
            if matches!(s.phase, BreakerPhase::HalfOpen) {
                let lapsed = Instant::now().checked_sub(self.cooldown).unwrap_or_else(Instant::now);
                s.phase = BreakerPhase::Open { since: lapsed };
            }
        }
    }

    /// Is `tenant`'s breaker currently shedding load?
    #[cfg(test)]
    pub fn is_open(&self, tenant: TenantId) -> bool {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        matches!(
            g.get(&tenant).map(|s| &s.phase),
            Some(BreakerPhase::Open { .. } | BreakerPhase::HalfOpen)
        )
    }
}

struct GroupState {
    /// Nanoseconds since `epoch` of the leader's last heartbeat.
    beat_ns: AtomicU64,
    /// The leader is inside a batch (heartbeats while idle-blocking on the
    /// queue are not required).
    busy: AtomicBool,
    healthy: AtomicBool,
}

/// Leader heartbeats plus the stall detector that consumes them. The leader
/// of group `g` calls [`GroupHealth::beat`] at every dispatch-loop turn and
/// brackets batch execution with [`GroupHealth::set_busy`]; a monitor thread
/// calls [`GroupHealth::check`] periodically. A group that is busy with a
/// stale heartbeat is marked unhealthy (counted in `serve.group_unhealthy`
/// and raised through [`faultkit::notify_solve_error`] as
/// [`faultkit::SolveError::GroupStalled`]); because every leader pulls from
/// the one shared queue, a wedged group's queue share drains to the healthy
/// survivors with no rebalancing step. A resumed heartbeat flips the group
/// back to healthy.
pub(crate) struct GroupHealth {
    epoch: Instant,
    stall_timeout: Duration,
    groups: Vec<GroupState>,
}

impl GroupHealth {
    pub fn new(groups: usize, cfg: &ResilienceConfig) -> Self {
        let epoch = Instant::now();
        GroupHealth {
            epoch,
            stall_timeout: cfg.stall_timeout,
            groups: (0..groups)
                .map(|_| GroupState {
                    beat_ns: AtomicU64::new(0),
                    busy: AtomicBool::new(false),
                    healthy: AtomicBool::new(true),
                })
                .collect(),
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    pub fn beat(&self, group: usize) {
        self.groups[group].beat_ns.store(self.now_ns(), Ordering::Relaxed);
    }

    pub fn set_busy(&self, group: usize, busy: bool) {
        self.beat(group);
        self.groups[group].busy.store(busy, Ordering::Relaxed);
    }

    #[cfg(test)]
    pub fn healthy(&self, group: usize) -> bool {
        self.groups[group].healthy.load(Ordering::Relaxed)
    }

    pub fn unhealthy_count(&self) -> usize {
        self.groups.iter().filter(|g| !g.healthy.load(Ordering::Relaxed)).count()
    }

    /// One detector sweep. Marks busy groups with stale heartbeats
    /// unhealthy (counting and raising each transition) and recovers groups
    /// whose heartbeat resumed. Returns the groups newly marked unhealthy.
    pub fn check(&self) -> Vec<usize> {
        let now = self.now_ns();
        let stall_ns = self.stall_timeout.as_nanos() as u64;
        let mut newly_unhealthy = Vec::new();
        for (i, s) in self.groups.iter().enumerate() {
            let stale = now.saturating_sub(s.beat_ns.load(Ordering::Relaxed));
            let wedged = s.busy.load(Ordering::Relaxed) && stale > stall_ns;
            if wedged && s.healthy.swap(false, Ordering::Relaxed) {
                obskit::add_serve_group_unhealthy();
                faultkit::notify_solve_error(&faultkit::SolveError::GroupStalled {
                    group: i,
                    stalled: Duration::from_nanos(stale),
                });
                newly_unhealthy.push(i);
            } else if !wedged {
                s.healthy.store(true, Ordering::Relaxed);
            }
        }
        newly_unhealthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ResilienceConfig {
        ResilienceConfig::default()
    }

    #[test]
    fn retry_delay_grows_exponentially_and_is_deterministic() {
        let c = ResilienceConfig { retry_backoff: Duration::from_millis(4), ..cfg() };
        let d1 = retry_delay(&c, 7, 1);
        let d2 = retry_delay(&c, 7, 2);
        let d3 = retry_delay(&c, 7, 3);
        // base·2^(k-1) ≤ delay < base·2^(k-1) + base
        assert!(d1 >= Duration::from_millis(4) && d1 < Duration::from_millis(8), "{d1:?}");
        assert!(d2 >= Duration::from_millis(8) && d2 < Duration::from_millis(12), "{d2:?}");
        assert!(d3 >= Duration::from_millis(16) && d3 < Duration::from_millis(20), "{d3:?}");
        // Same inputs ⇒ same jitter; different tenant ⇒ (generically)
        // different jitter but same bounds.
        assert_eq!(d1, retry_delay(&c, 7, 1));
        let other = retry_delay(&c, 8, 1);
        assert!(other >= Duration::from_millis(4) && other < Duration::from_millis(8));
    }

    #[test]
    fn zero_backoff_is_zero_delay() {
        let c = ResilienceConfig { retry_backoff: Duration::ZERO, ..cfg() };
        assert_eq!(retry_delay(&c, 1, 1), Duration::ZERO);
        assert_eq!(retry_delay(&c, 1, 5), Duration::ZERO);
    }

    #[test]
    fn breaker_opens_after_threshold_and_probes_after_cooldown() {
        let c = ResilienceConfig {
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(10),
            ..cfg()
        };
        let b = Breakers::new(&c);
        assert_eq!(b.admit(1), Ok(Admit::Normal));
        assert!(!b.record_failure(1));
        assert!(!b.record_failure(1));
        assert_eq!(b.admit(1), Ok(Admit::Normal), "below threshold stays closed");
        assert!(b.record_failure(1), "third consecutive failure opens");
        assert!(b.is_open(1));
        assert_eq!(b.admit(1), Err(3), "open breaker sheds load");
        assert_eq!(b.admit(2), Ok(Admit::Normal), "other tenants unaffected");

        std::thread::sleep(Duration::from_millis(12));
        assert_eq!(b.admit(1), Ok(Admit::Probe), "cooldown elapsed: one probe");
        assert_eq!(b.admit(1), Err(3), "only one probe while half-open");
        b.record_success(1);
        assert_eq!(b.admit(1), Ok(Admit::Normal), "probe success closes");
        assert!(!b.is_open(1));
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let c = ResilienceConfig {
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(5),
            ..cfg()
        };
        let b = Breakers::new(&c);
        assert!(b.record_failure(9));
        std::thread::sleep(Duration::from_millis(7));
        assert_eq!(b.admit(9), Ok(Admit::Probe));
        assert!(b.record_failure(9), "failed probe re-opens (a counted transition)");
        assert_eq!(b.admit(9), Err(2));
    }

    #[test]
    fn aborted_probe_lets_the_next_admit_probe_again() {
        let c = ResilienceConfig {
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(5),
            ..cfg()
        };
        let b = Breakers::new(&c);
        assert!(b.record_failure(3));
        std::thread::sleep(Duration::from_millis(7));
        assert_eq!(b.admit(3), Ok(Admit::Probe));
        b.abort_probe(3); // probe was shed at the queue, never ran
        assert_eq!(b.admit(3), Ok(Admit::Probe), "slot is immediately re-offered");
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let c = ResilienceConfig { breaker_threshold: 2, ..cfg() };
        let b = Breakers::new(&c);
        assert!(!b.record_failure(4));
        b.record_success(4);
        assert!(!b.record_failure(4), "streak restarted; one failure is below threshold");
        assert!(b.record_failure(4));
    }

    #[test]
    fn stall_detector_flags_busy_stale_groups_and_recovers() {
        // The hook and the group_unhealthy counter are process-global;
        // serialize with the service-level stall test.
        let _x = crate::testsync::stall_exclusive();
        let c = ResilienceConfig { stall_timeout: Duration::from_millis(20), ..cfg() };
        let h = GroupHealth::new(2, &c);
        h.beat(0);
        h.beat(1);
        assert_eq!(h.check(), Vec::<usize>::new(), "fresh heartbeats are healthy");

        // Group 0 goes busy then silent; group 1 keeps beating.
        h.set_busy(0, true);
        std::thread::sleep(Duration::from_millis(30));
        h.beat(1);
        let before = obskit::serve_counters().group_unhealthy;
        let seen = std::sync::Mutex::new(Vec::new());
        // Hook observes the typed stall event.
        struct HookGuard;
        impl Drop for HookGuard {
            fn drop(&mut self) {
                faultkit::clear_solve_error_hook();
            }
        }
        let _g = HookGuard;
        // Leak a 'static reference for the hook's lifetime (test-only).
        let seen_ref: &'static std::sync::Mutex<Vec<String>> = Box::leak(Box::new(seen));
        faultkit::set_solve_error_hook(move |e| {
            if matches!(e, faultkit::SolveError::GroupStalled { .. }) {
                seen_ref.lock().unwrap().push(e.to_string());
            }
        });
        assert_eq!(h.check(), vec![0]);
        assert!(!h.healthy(0));
        assert!(h.healthy(1));
        assert_eq!(h.unhealthy_count(), 1);
        assert_eq!(obskit::serve_counters().group_unhealthy, before + 1);
        assert_eq!(h.check(), Vec::<usize>::new(), "already-unhealthy is not re-counted");
        let events = seen_ref.lock().unwrap().clone();
        assert_eq!(events.len(), 1, "stall raised exactly once: {events:?}");
        assert!(events[0].contains("group 0"), "{events:?}");

        // Heartbeat resumes (batch finished): recovered.
        h.set_busy(0, false);
        h.check();
        assert!(h.healthy(0));
        assert_eq!(h.unhealthy_count(), 0);
    }
}
