//! The collected trace: per-rank event streams, nesting validation, the
//! per-stage second rollup (the `StageTimings` compatibility source), and
//! the hierarchical summary tree.

use crate::counters::{take_counters, CounterSnapshot};
use crate::span::{drain_registry, flush_thread, Event, EventKind};
use crate::Stage;
use std::collections::BTreeMap;

/// One thread lane's event stream, in recording order. A simulated-MPI
/// rank is usually a single lane, but unranked threads (main thread, Rayon
/// workers, progress engines) each get their own lane under rank 0 rather
/// than being merged together.
#[derive(Clone, Debug)]
pub struct RankTrace {
    pub rank: usize,
    /// Process-unique lane id (distinguishes threads sharing a rank).
    pub tid: u64,
    /// Human-readable lane name, e.g. `"rank 2"` or `"progress-0"`.
    pub label: String,
    pub events: Vec<Event>,
}

/// A completed trace: every rank's stream plus the counter snapshot.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Lane streams, sorted by (rank, lane id).
    pub ranks: Vec<RankTrace>,
    pub counters: CounterSnapshot,
}

/// Flush the calling thread, drain every rank stream recorded so far, and
/// snapshot-and-reset the counters. Rank threads launched via
/// `parcomm::spmd` flush on exit, so calling this after `spmd` returns
/// yields the complete run.
pub fn take_trace() -> Trace {
    flush_thread();
    let mut by_lane: BTreeMap<(usize, u64), (String, Vec<Event>)> = BTreeMap::new();
    for batch in drain_registry() {
        let lane = by_lane
            .entry((batch.rank, batch.tid))
            .or_insert_with(|| (batch.label, Vec::new()));
        lane.1.extend(batch.events);
    }
    Trace {
        ranks: by_lane
            .into_iter()
            .map(|((rank, tid), (label, events))| RankTrace { rank, tid, label, events })
            .collect(),
        counters: take_counters(),
    }
}

/// Seconds per [`Stage`], indexed by [`Stage::index`].
pub type StageSeconds = [f64; Stage::ALL.len()];

impl Trace {
    /// Total wall span (seconds) covered by the trace, first `Begin` to
    /// last event, 0.0 if empty.
    pub fn wall_seconds(&self) -> f64 {
        let lo = self.ranks.iter().filter_map(|r| r.events.first()).map(|e| e.ts_ns).min();
        let hi = self.ranks.iter().filter_map(|r| r.events.last()).map(|e| e.ts_ns).max();
        match (lo, hi) {
            (Some(a), Some(b)) => (b.saturating_sub(a)) as f64 * 1e-9,
            _ => 0.0,
        }
    }

    /// Check the nesting invariants of every rank stream: timestamps are
    /// monotone, every `End` matches the innermost open `Begin` by name (no
    /// orphan closes), and no span is left open. Child intervals are ⊆ the
    /// parent interval by construction of the per-thread stack; monotonicity
    /// makes that checkable here.
    pub fn validate(&self) -> Result<(), String> {
        for r in &self.ranks {
            let mut stack: Vec<&Event> = Vec::new();
            let mut last_ts = 0u64;
            for (i, ev) in r.events.iter().enumerate() {
                if ev.ts_ns < last_ts {
                    return Err(format!(
                        "rank {}: timestamp regression at event {i} ({} < {last_ts})",
                        r.rank, ev.ts_ns
                    ));
                }
                last_ts = ev.ts_ns;
                match ev.kind {
                    EventKind::Begin => stack.push(ev),
                    EventKind::End { .. } => {
                        let open = stack.pop().ok_or_else(|| {
                            format!("rank {}: orphan close '{}' at event {i}", r.rank, ev.name)
                        })?;
                        if open.name != ev.name {
                            return Err(format!(
                                "rank {}: close '{}' does not match open '{}' at event {i}",
                                r.rank, ev.name, open.name
                            ));
                        }
                    }
                    EventKind::Instant => {}
                }
            }
            if let Some(open) = stack.last() {
                return Err(format!("rank {}: span '{}' never closed", r.rank, open.name));
            }
        }
        Ok(())
    }

    /// Exclusive (self-time) seconds per stage for one rank: each span
    /// contributes its duration minus the durations of its direct children,
    /// so nested `mpi` spans inside a `gemm` span are charged to `mpi`
    /// only. This is the quantity `lrtddft::StageTimings` measures with its
    /// section timers.
    pub fn stage_seconds_for_rank(&self, rank: usize) -> StageSeconds {
        let mut out = [0.0; Stage::ALL.len()];
        // A rank can own several lanes (rank thread + labelled workers);
        // each lane has its own well-nested stack, so sum them.
        for r in self.ranks.iter().filter(|r| r.rank == rank) {
            // (stage, begin_ts, child_ns)
            let mut stack: Vec<(Stage, u64, u64)> = Vec::new();
            for ev in &r.events {
                match ev.kind {
                    EventKind::Begin => stack.push((ev.stage, ev.ts_ns, 0)),
                    EventKind::End { .. } => {
                        if let Some((stage, t0, child_ns)) = stack.pop() {
                            let dur = ev.ts_ns.saturating_sub(t0);
                            let excl = dur.saturating_sub(child_ns);
                            out[stage.index()] += excl as f64 * 1e-9;
                            if let Some(parent) = stack.last_mut() {
                                parent.2 += dur;
                            }
                        }
                    }
                    EventKind::Instant => {}
                }
            }
        }
        out
    }

    /// [`Trace::stage_seconds_for_rank`] summed over all ranks.
    pub fn stage_seconds_total(&self) -> StageSeconds {
        let mut out = [0.0; Stage::ALL.len()];
        let mut seen: Vec<usize> = Vec::new();
        for r in &self.ranks {
            if seen.contains(&r.rank) {
                continue; // stage_seconds_for_rank already summed this rank's lanes
            }
            seen.push(r.rank);
            let s = self.stage_seconds_for_rank(r.rank);
            for (o, v) in out.iter_mut().zip(s.iter()) {
                *o += v;
            }
        }
        out
    }

    /// Sum of an `args` key over all events (e.g. `"bytes"` across `mpi:*`
    /// closes) for one rank, filtered by event-name prefix.
    pub fn sum_arg(&self, rank: usize, name_prefix: &str, key: &str) -> f64 {
        self.ranks
            .iter()
            .filter(|r| r.rank == rank)
            .flat_map(|r| r.events.iter())
            .filter(|e| e.name.starts_with(name_prefix))
            .flat_map(|e| e.args.iter())
            .filter(|(k, _)| *k == key)
            .map(|(_, v)| v)
            .sum()
    }

    /// Per-iteration instant events with `name`, for one rank, as
    /// `(ts_seconds, args)` rows in time order.
    pub fn instants(&self, rank: usize, name: &str) -> Vec<(f64, Vec<(&'static str, f64)>)> {
        self.ranks
            .iter()
            .filter(|r| r.rank == rank)
            .flat_map(|r| r.events.iter())
            .filter(|e| e.kind == EventKind::Instant && e.name == name)
            .map(|e| (e.ts_ns as f64 * 1e-9, e.args.clone()))
            .collect()
    }

    /// Render the hierarchical summary tree: spans aggregated by call path,
    /// with call counts, total (inclusive) and self (exclusive) seconds,
    /// all ranks merged.
    pub fn summary_tree(&self) -> String {
        let mut root = Node::default();
        for r in &self.ranks {
            // Stack of (path-node pointer chain index list, begin_ts, child_ns).
            let mut path: Vec<&'static str> = Vec::new();
            let mut marks: Vec<(u64, u64)> = Vec::new();
            for ev in &r.events {
                match ev.kind {
                    EventKind::Begin => {
                        path.push(ev.name);
                        marks.push((ev.ts_ns, 0));
                    }
                    EventKind::End { aborted } => {
                        if let Some((t0, child_ns)) = marks.pop() {
                            let dur = ev.ts_ns.saturating_sub(t0);
                            let node = root.descend(&path);
                            node.calls += 1;
                            node.total_ns += dur;
                            node.self_ns += dur.saturating_sub(child_ns);
                            node.aborted += aborted as u64;
                            path.pop();
                            if let Some(parent) = marks.last_mut() {
                                parent.1 += dur;
                            }
                        }
                    }
                    EventKind::Instant => {}
                }
            }
        }
        let mut out = String::from("span tree (calls, total s, self s):\n");
        root.render(&mut out, 0);
        out
    }
}

#[derive(Default)]
struct Node {
    calls: u64,
    total_ns: u64,
    self_ns: u64,
    aborted: u64,
    children: BTreeMap<&'static str, Node>,
}

impl Node {
    fn descend(&mut self, path: &[&'static str]) -> &mut Node {
        let mut n = self;
        for name in path {
            n = n.children.entry(name).or_default();
        }
        n
    }

    fn render(&self, out: &mut String, depth: usize) {
        // Children sorted by descending total time.
        let mut kids: Vec<(&&str, &Node)> = self.children.iter().collect();
        kids.sort_by_key(|kid| std::cmp::Reverse(kid.1.total_ns));
        for (name, node) in kids {
            let aborted = if node.aborted > 0 {
                format!("  [{} aborted]", node.aborted)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{:indent$}{name:<width$} {calls:>6}  {total:>10.6}  {selfs:>10.6}{aborted}\n",
                "",
                indent = 2 * depth,
                width = (34usize).saturating_sub(2 * depth),
                calls = node.calls,
                total = node.total_ns as f64 * 1e-9,
                selfs = node.self_ns as f64 * 1e-9,
            ));
            node.render(out, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::testutil;
    use crate::{disable, enable, instant, span};

    fn record_demo() -> Trace {
        enable();
        {
            let _d = span(Stage::Diag, "diag");
            {
                let mut m = span(Stage::Mpi, "mpi:allreduce");
                m.arg("bytes", 64.0);
            }
            instant(Stage::Diag, "lobpcg.iter", &[("iter", 0.0), ("resid", 0.1)]);
            {
                let mut m = span(Stage::Mpi, "mpi:allreduce");
                m.arg("bytes", 36.0);
            }
        }
        disable();
        take_trace()
    }

    #[test]
    fn rollup_charges_exclusive_time() {
        let _g = testutil::exclusive();
        let t = record_demo();
        t.validate().expect("valid nesting");
        let s = t.stage_seconds_for_rank(0);
        let diag = s[Stage::Diag.index()];
        let mpi = s[Stage::Mpi.index()];
        assert!(diag > 0.0 && mpi > 0.0);
        // diag excludes its mpi children: both positive, total consistent.
        let total = t.wall_seconds();
        assert!(diag + mpi <= total + 1e-9);
    }

    #[test]
    fn sum_arg_and_instants() {
        let _g = testutil::exclusive();
        let t = record_demo();
        assert_eq!(t.sum_arg(0, "mpi:", "bytes"), 100.0);
        let it = t.instants(0, "lobpcg.iter");
        assert_eq!(it.len(), 1);
        assert_eq!(it[0].1[0], ("iter", 0.0));
    }

    #[test]
    fn summary_tree_lists_nested_paths() {
        let _g = testutil::exclusive();
        let t = record_demo();
        let tree = t.summary_tree();
        assert!(tree.contains("diag"), "{tree}");
        assert!(tree.contains("mpi:allreduce"), "{tree}");
    }

    #[test]
    fn validate_rejects_orphan_close() {
        let t = Trace {
            ranks: vec![RankTrace {
                rank: 0,
                tid: 1,
                label: "rank 0".to_string(),
                events: vec![Event {
                    kind: EventKind::End { aborted: false },
                    name: "x",
                    stage: Stage::Other,
                    ts_ns: 1,
                    args: vec![],
                }],
            }],
            counters: CounterSnapshot::default(),
        };
        assert!(t.validate().unwrap_err().contains("orphan close"));
    }

    #[test]
    fn validate_rejects_unclosed_span() {
        let t = Trace {
            ranks: vec![RankTrace {
                rank: 1,
                tid: 2,
                label: "rank 1".to_string(),
                events: vec![Event {
                    kind: EventKind::Begin,
                    name: "open",
                    stage: Stage::Other,
                    ts_ns: 1,
                    args: vec![],
                }],
            }],
            counters: CounterSnapshot::default(),
        };
        assert!(t.validate().unwrap_err().contains("never closed"));
    }

    #[test]
    fn multirank_totals_sum() {
        let _g = testutil::exclusive();
        enable();
        std::thread::scope(|s| {
            for rank in 0..3 {
                s.spawn(move || {
                    crate::set_rank(rank);
                    let _sp = span(Stage::Gemm, "g");
                    std::hint::black_box(0u64);
                });
            }
        });
        disable();
        let t = take_trace();
        t.validate().unwrap();
        assert_eq!(t.ranks.len(), 3);
        let total = t.stage_seconds_total();
        let per: f64 = (0..3).map(|r| t.stage_seconds_for_rank(r)[Stage::Gemm.index()]).sum();
        assert!((total[Stage::Gemm.index()] - per).abs() < 1e-12);
    }
}
