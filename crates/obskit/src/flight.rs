//! Always-on flight recorder: a bounded lock-free ring of recent events.
//!
//! Full tracing ([`crate::enable`]) captures everything but is off by
//! default; when a solve fails in production there is no trace to look at.
//! The flight recorder closes that gap: every span close and instant is
//! *also* written into a fixed-capacity global ring buffer that stays on
//! even when tracing is disabled, so the last `capacity` events leading up
//! to a fault are always available. `faultkit`'s error hook (wired through
//! the recovery ladders in `lrtddft::recover`) dumps the ring as a
//! well-formed Chrome trace whenever a `SolveError` is raised, so every
//! recovered fault ships with its context.
//!
//! ## Design
//!
//! The ring is an array of fixed-size slots written with a per-slot
//! sequence-lock protocol — recording takes one `fetch_add` to claim a
//! ticket plus a handful of relaxed stores, with **no locks and no
//! allocation** on the hot path. Concurrent writers that lap each other
//! (one full ring apart) can tear a slot; the seq check makes readers
//! discard torn slots instead of decoding garbage. Event names are copied
//! into the slot (up to [`NAME_BYTES`] bytes) rather than stored as
//! pointers, so a torn read is merely lossy, never unsound.
//!
//! Disabled-tracing overhead stays within the <2% budget asserted by
//! `tests/tracing.rs` and the `obskit_overhead` bench: one flight record is
//! ~10 atomic stores on spans that are microseconds-to-milliseconds long.
//! [`set_enabled(false)`](set_enabled) reduces a record to a single relaxed
//! load for rare harsher budgets.

use crate::Stage;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Bytes of the event name preserved per slot (longer names truncate).
pub const NAME_BYTES: usize = 24;

/// Default ring capacity (slots); override with [`configure`] before the
/// first recorded event or via `OBSKIT_FLIGHT_CAP`.
pub const DEFAULT_CAPACITY: usize = 1024;

/// What a recorded flight event was.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightKind {
    /// A span that closed cleanly; `dur_ns` covers the whole span.
    Span,
    /// A span that closed during panic unwinding.
    AbortedSpan,
    /// A point event ([`crate::instant`] or [`note`]).
    Instant,
}

/// One decoded event from the ring.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightEvent {
    /// Ticket order (monotone across the whole process).
    pub seq: u64,
    pub kind: FlightKind,
    pub stage: Stage,
    /// Simulated MPI rank of the recording thread.
    pub rank: u32,
    /// End-of-event timestamp, ns since the obskit epoch.
    pub ts_ns: u64,
    /// Span duration (0 for instants).
    pub dur_ns: u64,
    /// Event name, truncated to [`NAME_BYTES`] bytes.
    pub name: String,
    /// First numeric argument of the closing event (0.0 if none).
    pub arg: f64,
}

const NAME_WORDS: usize = NAME_BYTES / 8;

#[derive(Default)]
struct Slot {
    /// Seqlock word: 0 = never written, odd = write in progress,
    /// `2·ticket + 2` = slot holds the event claimed by `ticket`.
    seq: AtomicU64,
    ts_ns: AtomicU64,
    dur_ns: AtomicU64,
    /// Packed `kind | stage | name_len | rank` (see `pack_meta`).
    meta: AtomicU64,
    name: [AtomicU64; NAME_WORDS],
    arg_bits: AtomicU64,
}

static RING: OnceLock<Vec<Slot>> = OnceLock::new();
static HEAD: AtomicU64 = AtomicU64::new(0);
static ON: AtomicBool = AtomicBool::new(true);
/// Capacity requested by [`configure`] before first use.
static REQUESTED_CAP: AtomicU64 = AtomicU64::new(0);

fn ring() -> &'static Vec<Slot> {
    RING.get_or_init(|| {
        let cap = match REQUESTED_CAP.load(Ordering::Relaxed) {
            0 => std::env::var("OBSKIT_FLIGHT_CAP")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&c| c > 0)
                .unwrap_or(DEFAULT_CAPACITY),
            n => n as usize,
        };
        (0..cap).map(|_| Slot::default()).collect()
    })
}

/// Is the flight recorder on? (Default: yes, independently of full tracing.)
#[inline(always)]
pub fn flight_enabled() -> bool {
    ON.load(Ordering::Relaxed)
}

/// Turn the recorder on/off. Off reduces every record site to one relaxed
/// atomic load.
pub fn set_enabled(on: bool) {
    ON.store(on, Ordering::SeqCst);
}

/// Request a ring capacity. Effective only before the first recorded event
/// (the ring allocates once, on first use); returns whether the request was
/// applied.
pub fn configure(capacity: usize) -> bool {
    if capacity == 0 || RING.get().is_some() {
        return false;
    }
    REQUESTED_CAP.store(capacity as u64, Ordering::Relaxed);
    true
}

/// The ring capacity currently in effect (allocating the ring if needed).
pub fn capacity() -> usize {
    ring().len()
}

/// Total events ever recorded (including overwritten ones).
pub fn recorded_total() -> u64 {
    HEAD.load(Ordering::Relaxed)
}

#[inline]
fn pack_meta(kind: FlightKind, stage: Stage, name_len: usize, rank: u32) -> u64 {
    let k = match kind {
        FlightKind::Span => 0u64,
        FlightKind::AbortedSpan => 1,
        FlightKind::Instant => 2,
    };
    k | ((stage.index() as u64) << 8)
        | ((name_len as u64) << 16)
        | ((rank as u64) << 24)
}

fn unpack_meta(meta: u64) -> Option<(FlightKind, Stage, usize, u32)> {
    let kind = match meta & 0xff {
        0 => FlightKind::Span,
        1 => FlightKind::AbortedSpan,
        2 => FlightKind::Instant,
        _ => return None,
    };
    let stage = *Stage::ALL.get(((meta >> 8) & 0xff) as usize)?;
    let len = ((meta >> 16) & 0xff) as usize;
    if len > NAME_BYTES {
        return None;
    }
    Some((kind, stage, len, (meta >> 24) as u32))
}

/// Record one event into the ring. Hot-path cost: one relaxed load when
/// disabled; one `fetch_add` + ~10 relaxed stores when on.
#[inline]
pub(crate) fn record(
    kind: FlightKind,
    stage: Stage,
    rank: usize,
    name: &str,
    ts_ns: u64,
    dur_ns: u64,
    arg: f64,
) {
    if !flight_enabled() {
        return;
    }
    let ring = ring();
    let ticket = HEAD.fetch_add(1, Ordering::Relaxed);
    let slot = &ring[(ticket % ring.len() as u64) as usize];
    // Seqlock write: odd marks in-progress, the final even value carries the
    // ticket so readers can order events and detect torn laps.
    slot.seq.store(2 * ticket + 1, Ordering::Release);
    slot.ts_ns.store(ts_ns, Ordering::Relaxed);
    slot.dur_ns.store(dur_ns, Ordering::Relaxed);
    let bytes = name.as_bytes();
    let len = bytes.len().min(NAME_BYTES);
    slot.meta.store(pack_meta(kind, stage, len, rank as u32), Ordering::Relaxed);
    for (w, word_slot) in slot.name.iter().enumerate() {
        let mut word = 0u64;
        for b in 0..8 {
            let i = w * 8 + b;
            if i < len {
                word |= (bytes[i] as u64) << (8 * b);
            }
        }
        word_slot.store(word, Ordering::Relaxed);
    }
    slot.arg_bits.store(arg.to_bits(), Ordering::Relaxed);
    slot.seq.store(2 * ticket + 2, Ordering::Release);
}

/// Record an explicit point event (e.g. a recovery-ladder rung) into the
/// ring, independent of full tracing.
pub fn note(stage: Stage, name: &str, arg: f64) {
    record(
        FlightKind::Instant,
        stage,
        crate::thread_rank(),
        name,
        crate::now_ns(),
        0,
        arg,
    );
}

/// Snapshot the ring without blocking writers: decode every consistent
/// slot, discard torn or in-progress ones, and return events sorted by
/// ticket order.
pub fn snapshot() -> Vec<FlightEvent> {
    let Some(ring) = RING.get() else {
        return Vec::new();
    };
    let mut out = Vec::with_capacity(ring.len());
    for slot in ring {
        let seq1 = slot.seq.load(Ordering::Acquire);
        if seq1 == 0 || seq1 % 2 == 1 {
            continue; // empty or mid-write
        }
        let ts_ns = slot.ts_ns.load(Ordering::Relaxed);
        let dur_ns = slot.dur_ns.load(Ordering::Relaxed);
        let meta = slot.meta.load(Ordering::Relaxed);
        let mut name_words = [0u64; NAME_WORDS];
        for (w, word_slot) in slot.name.iter().enumerate() {
            name_words[w] = word_slot.load(Ordering::Relaxed);
        }
        let arg_bits = slot.arg_bits.load(Ordering::Relaxed);
        let seq2 = slot.seq.load(Ordering::Acquire);
        if seq1 != seq2 {
            continue; // torn by a concurrent writer
        }
        let Some((kind, stage, len, rank)) = unpack_meta(meta) else {
            continue;
        };
        let mut bytes = [0u8; NAME_BYTES];
        for (i, byte) in bytes.iter_mut().enumerate() {
            *byte = (name_words[i / 8] >> (8 * (i % 8))) as u8;
        }
        let name = String::from_utf8_lossy(&bytes[..len]).into_owned();
        out.push(FlightEvent {
            seq: seq1 / 2 - 1,
            kind,
            stage,
            rank,
            ts_ns,
            dur_ns,
            name,
            arg: f64::from_bits(arg_bits),
        });
    }
    out.sort_by_key(|e| e.seq);
    out
}

/// Reset the ring to empty (testing / between campaigns). Not linearizable
/// against concurrent writers; callers quiesce first.
pub fn clear() {
    if let Some(ring) = RING.get() {
        for slot in ring {
            slot.seq.store(0, Ordering::Release);
        }
    }
}

/// Serialise the current ring contents as Chrome Trace Event Format JSON:
/// complete (`X`) events for spans, `i` for instants, one lane per rank,
/// plus `thread_name` metadata labelling each lane as a flight-recorder
/// lane. Validates against [`crate::chrome::validate_chrome_trace`].
pub fn dump_chrome_json() -> String {
    let events = snapshot();
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut lanes_seen: Vec<u32> = Vec::new();
    for ev in &events {
        if !lanes_seen.contains(&ev.rank) {
            lanes_seen.push(ev.rank);
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{r},\"tid\":{r},\
                 \"args\":{{\"name\":\"flight rank {r}\"}}}}",
                r = ev.rank
            );
        }
        if !first {
            out.push(',');
        }
        first = false;
        let ph = match ev.kind {
            FlightKind::Span | FlightKind::AbortedSpan => "X",
            FlightKind::Instant => "i",
        };
        // Chrome timestamps are µs; X events carry their duration.
        let ts_us = (ev.ts_ns.saturating_sub(ev.dur_ns)) as f64 / 1e3;
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"{ph}\",\"ts\":{ts_us:.3},\"pid\":{r},\"tid\":{r}",
            crate::chrome::escape_json_string(&ev.name),
            ev.stage.label(),
            r = ev.rank
        );
        match ev.kind {
            FlightKind::Span => {
                let _ = write!(out, ",\"dur\":{:.3}", ev.dur_ns as f64 / 1e3);
                let _ = write!(out, ",\"args\":{{\"seq\":{},\"arg\":{}}}", ev.seq, json_num(ev.arg));
            }
            FlightKind::AbortedSpan => {
                let _ = write!(out, ",\"dur\":{:.3}", ev.dur_ns as f64 / 1e3);
                let _ = write!(
                    out,
                    ",\"args\":{{\"seq\":{},\"arg\":{},\"aborted\":true}}",
                    ev.seq,
                    json_num(ev.arg)
                );
            }
            FlightKind::Instant => {
                out.push_str(",\"s\":\"t\"");
                let _ = write!(out, ",\"args\":{{\"seq\":{},\"arg\":{}}}", ev.seq, json_num(ev.arg));
            }
        }
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Write [`dump_chrome_json`] to `path`, returning the number of events
/// dumped.
pub fn dump_to(path: &std::path::Path) -> std::io::Result<usize> {
    let n = snapshot().len();
    std::fs::write(path, dump_chrome_json())?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::testutil;

    #[test]
    fn ring_records_and_snapshots_in_order() {
        let _g = testutil::exclusive();
        clear();
        for i in 0..5 {
            record(FlightKind::Instant, Stage::Other, 0, "tick", 100 + i, 0, i as f64);
        }
        let snap = snapshot();
        let ticks: Vec<&FlightEvent> = snap.iter().filter(|e| e.name == "tick").collect();
        assert_eq!(ticks.len(), 5);
        for w in ticks.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
        assert_eq!(ticks[4].arg, 4.0);
    }

    #[test]
    fn ring_is_bounded_and_keeps_most_recent() {
        let _g = testutil::exclusive();
        clear();
        let cap = capacity();
        for i in 0..(cap + 50) {
            record(FlightKind::Instant, Stage::Other, 1, "flood", i as u64, 0, i as f64);
        }
        let snap = snapshot();
        assert!(snap.len() <= cap);
        // The newest event always survives.
        assert!(snap.iter().any(|e| e.arg == (cap + 49) as f64));
        // The oldest must have been overwritten.
        assert!(!snap.iter().any(|e| e.name == "flood" && e.arg == 0.0));
    }

    #[test]
    fn names_truncate_not_corrupt() {
        let _g = testutil::exclusive();
        clear();
        let long = "a-very-long-span-name-that-exceeds-the-slot";
        record(FlightKind::Span, Stage::Gemm, 2, long, 10, 5, 0.0);
        let snap = snapshot();
        let ev = snap.iter().find(|e| e.kind == FlightKind::Span && e.rank == 2).unwrap();
        assert_eq!(ev.name.len(), NAME_BYTES);
        assert!(long.starts_with(&ev.name));
    }

    #[test]
    fn disabled_recorder_drops_events() {
        let _g = testutil::exclusive();
        clear();
        set_enabled(false);
        record(FlightKind::Instant, Stage::Other, 0, "dropped", 1, 0, 0.0);
        set_enabled(true);
        assert!(!snapshot().iter().any(|e| e.name == "dropped"));
    }

    #[test]
    fn dump_is_schema_valid_chrome_json() {
        let _g = testutil::exclusive();
        clear();
        record(FlightKind::Span, Stage::Diag, 0, "diag.lobpcg", 2_000, 1_000, 0.0);
        record(FlightKind::AbortedSpan, Stage::Fft, 1, "fft.apply", 3_000, 500, 0.0);
        record(FlightKind::Instant, Stage::Other, 0, "recover.rung", 4_000, 0, 2.0);
        let json = dump_chrome_json();
        let stats = crate::chrome::validate_chrome_trace(&json).expect("valid dump");
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.instants, 1);
        assert!(stats.metadata >= 1, "thread_name lanes present");
    }

    #[test]
    fn concurrent_writers_never_produce_torn_garbage() {
        let _g = testutil::exclusive();
        clear();
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in 0..2000u64 {
                        record(
                            FlightKind::Instant,
                            Stage::Mpi,
                            t,
                            "mpi:allreduce",
                            i,
                            0,
                            i as f64,
                        );
                    }
                });
            }
        });
        for ev in snapshot() {
            if ev.name.starts_with("mpi") {
                assert_eq!(ev.name, "mpi:allreduce");
                assert!(ev.rank < 4);
            }
        }
    }
}
