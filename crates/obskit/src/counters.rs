//! Typed global counters: flops, bytes moved by collectives, FFT calls, and
//! a log₂-bucketed GEMM shape histogram.
//!
//! All adders are gated on [`crate::enabled`]: disabled cost is one relaxed
//! atomic load. Enabled cost is a `fetch_add` (plus, for the shape
//! histogram, one short mutex acquisition per GEMM call — GEMM calls are
//! milliseconds-scale, the lock is nanoseconds).

use crate::enabled;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static FLOPS: AtomicU64 = AtomicU64::new(0);
static BYTES_MOVED: AtomicU64 = AtomicU64::new(0);
static FFT_CALLS: AtomicU64 = AtomicU64::new(0);
static FFT_PLAN_HITS: AtomicU64 = AtomicU64::new(0);
static FFT_PLAN_MISSES: AtomicU64 = AtomicU64::new(0);
static COMM_SEGMENTS: AtomicU64 = AtomicU64::new(0);
static GEMM_SHAPES: Mutex<Option<HashMap<[u8; 3], u64>>> = Mutex::new(None);
static KERNEL_DISPATCH: Mutex<Option<HashMap<&'static str, u64>>> = Mutex::new(None);

/// Count floating-point work (e.g. `2·m·n·k` per GEMM).
#[inline]
pub fn add_flops(n: u64) {
    if enabled() {
        FLOPS.fetch_add(n, Ordering::Relaxed);
    }
}

/// Count bytes contributed to collectives.
#[inline]
pub fn add_bytes_moved(n: u64) {
    if enabled() {
        BYTES_MOVED.fetch_add(n, Ordering::Relaxed);
    }
}

/// Count 3-D FFT invocations.
#[inline]
pub fn add_fft_calls(n: u64) {
    if enabled() {
        FFT_CALLS.fetch_add(n, Ordering::Relaxed);
    }
}

/// Count a 1-D FFT plan-cache lookup that found an existing plan. Concurrent
/// same-shape solves share one process-wide plan table; this counter is how
/// tests and the serving report prove the sharing actually happens.
#[inline]
pub fn add_fft_plan_hit() {
    if enabled() {
        FFT_PLAN_HITS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Count a 1-D FFT plan-cache lookup that had to build a new plan (first
/// toucher of a length).
#[inline]
pub fn add_fft_plan_miss() {
    if enabled() {
        FFT_PLAN_MISSES.fetch_add(1, Ordering::Relaxed);
    }
}

/// Count chunked-collective segment steps executed by the comm progress
/// engine (safe to call from engine worker threads — a plain atomic, no
/// thread-local trace stream involved).
#[inline]
pub fn add_comm_segments(n: u64) {
    if enabled() {
        COMM_SEGMENTS.fetch_add(n, Ordering::Relaxed);
    }
}

/// ⌈log₂ v⌉ — a bucket's upper bound is `2^b ≥ v`, exact powers of two land
/// on their own boundary.
#[inline]
fn log2_bucket(v: usize) -> u8 {
    v.max(1).next_power_of_two().trailing_zeros() as u8
}

/// Record one GEMM call of output `m × n` over shared dimension `k` in the
/// shape histogram (dimensions bucketed by ⌈log₂⌉) and add its `2·m·n·k`
/// flops.
#[inline]
pub fn record_gemm_shape(m: usize, n: usize, k: usize) {
    if !enabled() {
        return;
    }
    FLOPS.fetch_add(2 * (m as u64) * (n as u64) * (k as u64), Ordering::Relaxed);
    let key = [log2_bucket(m), log2_bucket(n), log2_bucket(k)];
    let mut g = GEMM_SHAPES.lock().unwrap_or_else(|p| p.into_inner());
    *g.get_or_insert_with(HashMap::new).entry(key).or_insert(0) += 1;
}

/// Record which compute-kernel path a dense-kernel call dispatched to
/// (e.g. `"gemm.blocked.8x8.avx2"`, `"gemm.skinny_packed.scalar"`,
/// `"gemv.avx2"`). Labels must be static — the runtime dispatch decision set
/// is finite and known at compile time.
#[inline]
pub fn record_kernel_dispatch(label: &'static str) {
    if !enabled() {
        return;
    }
    let mut g = KERNEL_DISPATCH.lock().unwrap_or_else(|p| p.into_inner());
    *g.get_or_insert_with(HashMap::new).entry(label).or_insert(0) += 1;
}

/// One GEMM histogram bucket: `m`, `n`, `k` upper bounds (`2^b`) and the
/// number of calls that landed in it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GemmBucket {
    pub m_max: u64,
    pub n_max: u64,
    pub k_max: u64,
    pub calls: u64,
}

/// Point-in-time snapshot of every counter.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CounterSnapshot {
    pub flops: u64,
    pub bytes_moved: u64,
    pub fft_calls: u64,
    /// 1-D FFT plan-cache lookups that reused an existing plan.
    pub fft_plan_hits: u64,
    /// 1-D FFT plan-cache lookups that built a new plan.
    pub fft_plan_misses: u64,
    /// Chunked-collective segment steps run by the comm progress engine.
    pub comm_segments: u64,
    /// GEMM shape histogram, sorted by descending call count.
    pub gemm_shapes: Vec<GemmBucket>,
    /// Kernel dispatch decisions `(label, calls)`, sorted by descending call
    /// count then label (e.g. which GEMM path and SIMD family ran).
    pub kernel_dispatch: Vec<(String, u64)>,
}

/// Snapshot and reset all counters (called by [`crate::take_trace`]).
pub(crate) fn take_counters() -> CounterSnapshot {
    let mut shapes: Vec<GemmBucket> = {
        let mut g = GEMM_SHAPES.lock().unwrap_or_else(|p| p.into_inner());
        g.take()
            .unwrap_or_default()
            .into_iter()
            .map(|([m, n, k], calls)| GemmBucket {
                m_max: 1u64 << m,
                n_max: 1u64 << n,
                k_max: 1u64 << k,
                calls,
            })
            .collect()
    };
    shapes.sort_by(|a, b| b.calls.cmp(&a.calls).then(a.m_max.cmp(&b.m_max)));
    let mut dispatch: Vec<(String, u64)> = {
        let mut g = KERNEL_DISPATCH.lock().unwrap_or_else(|p| p.into_inner());
        g.take().unwrap_or_default().into_iter().map(|(l, c)| (l.to_string(), c)).collect()
    };
    dispatch.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    CounterSnapshot {
        flops: FLOPS.swap(0, Ordering::Relaxed),
        bytes_moved: BYTES_MOVED.swap(0, Ordering::Relaxed),
        fft_calls: FFT_CALLS.swap(0, Ordering::Relaxed),
        fft_plan_hits: FFT_PLAN_HITS.swap(0, Ordering::Relaxed),
        fft_plan_misses: FFT_PLAN_MISSES.swap(0, Ordering::Relaxed),
        comm_segments: COMM_SEGMENTS.swap(0, Ordering::Relaxed),
        gemm_shapes: shapes,
        kernel_dispatch: dispatch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::testutil;
    use crate::{disable, enable};

    #[test]
    fn disabled_adders_do_nothing() {
        let _g = testutil::exclusive();
        add_flops(100);
        add_bytes_moved(100);
        add_fft_calls(1);
        record_gemm_shape(8, 8, 8);
        record_kernel_dispatch("gemm.small");
        let snap = take_counters();
        assert_eq!(snap, CounterSnapshot::default());
    }

    #[test]
    fn kernel_dispatch_histogram_accumulates() {
        let _g = testutil::exclusive();
        enable();
        record_kernel_dispatch("gemm.blocked.8x8.avx2");
        record_kernel_dispatch("gemm.blocked.8x8.avx2");
        record_kernel_dispatch("gemm.small");
        disable();
        let snap = take_counters();
        assert_eq!(
            snap.kernel_dispatch,
            vec![("gemm.blocked.8x8.avx2".to_string(), 2), ("gemm.small".to_string(), 1)]
        );
        assert_eq!(take_counters().kernel_dispatch, Vec::new());
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let _g = testutil::exclusive();
        enable();
        add_flops(10);
        add_flops(5);
        add_bytes_moved(800);
        add_fft_calls(3);
        record_gemm_shape(128, 128, 4096); // + 2*128*128*4096 flops
        record_gemm_shape(100, 100, 4000); // same log2 buckets
        record_gemm_shape(8, 4, 16);
        disable();
        let snap = take_counters();
        assert_eq!(snap.flops, 15 + 2 * 128 * 128 * 4096 + 2 * 100 * 100 * 4000 + 2 * 8 * 4 * 16);
        assert_eq!(snap.bytes_moved, 800);
        assert_eq!(snap.fft_calls, 3);
        assert_eq!(snap.gemm_shapes.len(), 2);
        assert_eq!(snap.gemm_shapes[0].calls, 2); // the two big ones share a bucket
        assert_eq!(snap.gemm_shapes[0].m_max, 128);
        // Second take is empty — counters reset.
        assert_eq!(take_counters(), CounterSnapshot::default());
    }

    #[test]
    fn fft_plan_counters_accumulate_and_reset() {
        let _g = testutil::exclusive();
        enable();
        add_fft_plan_miss();
        add_fft_plan_hit();
        add_fft_plan_hit();
        disable();
        let snap = take_counters();
        assert_eq!(snap.fft_plan_hits, 2);
        assert_eq!(snap.fft_plan_misses, 1);
        assert_eq!(take_counters().fft_plan_hits, 0);
    }

    #[test]
    fn log2_buckets_are_ceilings() {
        assert_eq!(log2_bucket(1), 0);
        assert_eq!(log2_bucket(2), 1);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 2);
        assert_eq!(log2_bucket(1024), 10);
    }
}
