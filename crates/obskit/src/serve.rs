//! Service-resilience counters (`serve.*`).
//!
//! Unlike the tracing counters in [`crate::counters`], these are **always
//! on**: retries, breaker trips, and deadline misses are rare, operator-facing
//! events that must be visible even when span tracing is disabled (the chaos
//! soak measures latency and must not pay tracing overhead to count them).
//! Each adder is one relaxed `fetch_add` on a static atomic.

use std::sync::atomic::{AtomicU64, Ordering};

static RETRIES: AtomicU64 = AtomicU64::new(0);
static BREAKER_OPEN: AtomicU64 = AtomicU64::new(0);
static DEGRADED: AtomicU64 = AtomicU64::new(0);
static DEADLINE_MISS: AtomicU64 = AtomicU64::new(0);
static GROUP_UNHEALTHY: AtomicU64 = AtomicU64::new(0);

/// Count a failed job being re-queued for another attempt (`serve.retries`).
#[inline]
pub fn add_serve_retry() {
    RETRIES.fetch_add(1, Ordering::Relaxed);
}

/// Count a per-tenant circuit breaker transitioning closed → open
/// (`serve.breaker_open`).
#[inline]
pub fn add_serve_breaker_open() {
    BREAKER_OPEN.fetch_add(1, Ordering::Relaxed);
}

/// Count a job executed with a degraded (cheaper) configuration
/// (`serve.degraded`).
#[inline]
pub fn add_serve_degraded() {
    DEGRADED.fetch_add(1, Ordering::Relaxed);
}

/// Count a job that missed its deadline — expired in the queue or delivered
/// late (`serve.deadline_miss`).
#[inline]
pub fn add_serve_deadline_miss() {
    DEADLINE_MISS.fetch_add(1, Ordering::Relaxed);
}

/// Count a solver group being marked unhealthy by the stall detector
/// (`serve.group_unhealthy`).
#[inline]
pub fn add_serve_group_unhealthy() {
    GROUP_UNHEALTHY.fetch_add(1, Ordering::Relaxed);
}

/// Point-in-time snapshot of the `serve.*` counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Jobs re-queued after a recoverable failure (`serve.retries`).
    pub retries: u64,
    /// Closed → open breaker transitions (`serve.breaker_open`).
    pub breaker_open: u64,
    /// Jobs run with a degraded configuration (`serve.degraded`).
    pub degraded: u64,
    /// Deadline misses — queue expiry or late delivery (`serve.deadline_miss`).
    pub deadline_miss: u64,
    /// Stall-detector unhealthy markings (`serve.group_unhealthy`).
    pub group_unhealthy: u64,
}

/// Snapshot without resetting.
pub fn serve_counters() -> ServeCounters {
    ServeCounters {
        retries: RETRIES.load(Ordering::Relaxed),
        breaker_open: BREAKER_OPEN.load(Ordering::Relaxed),
        degraded: DEGRADED.load(Ordering::Relaxed),
        deadline_miss: DEADLINE_MISS.load(Ordering::Relaxed),
        group_unhealthy: GROUP_UNHEALTHY.load(Ordering::Relaxed),
    }
}

/// Snapshot and reset — one measurement window ends, the next begins.
pub fn take_serve_counters() -> ServeCounters {
    ServeCounters {
        retries: RETRIES.swap(0, Ordering::Relaxed),
        breaker_open: BREAKER_OPEN.swap(0, Ordering::Relaxed),
        degraded: DEGRADED.swap(0, Ordering::Relaxed),
        deadline_miss: DEADLINE_MISS.swap(0, Ordering::Relaxed),
        group_unhealthy: GROUP_UNHEALTHY.swap(0, Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_counters_count_without_tracing_enabled() {
        // Process-global; serialize against other serve-counter users via
        // the span test lock (which also guarantees tracing stays off).
        let _g = crate::span::testutil::exclusive();
        let _ = take_serve_counters();
        assert!(!crate::enabled());
        add_serve_retry();
        add_serve_retry();
        add_serve_breaker_open();
        add_serve_degraded();
        add_serve_deadline_miss();
        add_serve_group_unhealthy();
        let snap = serve_counters();
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.breaker_open, 1);
        assert_eq!(snap.degraded, 1);
        assert_eq!(snap.deadline_miss, 1);
        assert_eq!(snap.group_unhealthy, 1);
        // take() resets; a second take is empty.
        assert_eq!(take_serve_counters(), snap);
        assert_eq!(take_serve_counters(), ServeCounters::default());
    }
}
