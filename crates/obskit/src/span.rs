//! RAII span guards, instant events, and the per-thread event streams.
//!
//! Each thread owns a lock-free event buffer; spans push a `Begin` on
//! creation and an `End` on drop. When the thread's open-span stack returns
//! to depth zero the buffer drains into the global registry under one mutex
//! acquisition, keeping hot paths free of shared-state traffic.

use crate::{enabled, now_ns, Stage};
use std::cell::RefCell;
use std::sync::Mutex;

/// What kind of event a stream entry is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Span opened (Chrome `B`).
    Begin,
    /// Span closed (Chrome `E`). `aborted` means the guard dropped during a
    /// panic unwind — the trace stays well-formed, the span is flagged.
    End { aborted: bool },
    /// Point-in-time marker (Chrome `i`), e.g. a solver-iteration record.
    Instant,
}

/// One entry of a rank's event stream.
#[derive(Clone, Debug)]
pub struct Event {
    pub kind: EventKind,
    /// Static name, e.g. `"mpi:allreduce"` or `"lobpcg.iter"`.
    pub name: &'static str,
    /// Roll-up stage (Chrome `cat`).
    pub stage: Stage,
    /// Monotonic nanoseconds since the session epoch.
    pub ts_ns: u64,
    /// Numeric payload (byte counts, iteration numbers, residuals…).
    pub args: Vec<(&'static str, f64)>,
}

/// Global registry of flushed event batches, tagged by rank. Batches are
/// appended in flush order; within one rank the order is the recording
/// order because a rank is a single thread.
static REGISTRY: Mutex<Vec<(usize, Vec<Event>)>> = Mutex::new(Vec::new());

struct ThreadStream {
    rank: usize,
    events: Vec<Event>,
    depth: usize,
}

impl ThreadStream {
    const fn new() -> Self {
        ThreadStream { rank: 0, events: Vec::new(), depth: 0 }
    }

    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.events);
        REGISTRY
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push((self.rank, batch));
    }
}

impl Drop for ThreadStream {
    // Backstop: a thread exiting with a non-empty buffer (e.g. killed while
    // spans were force-forgotten) still delivers what it recorded.
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static STREAM: RefCell<ThreadStream> = const { RefCell::new(ThreadStream::new()) };
}

/// Tag this thread's event stream with a simulated-MPI rank id. Called by
/// `parcomm::spmd` at rank-thread startup; defaults to 0 elsewhere.
pub fn set_rank(rank: usize) {
    STREAM.with(|s| s.borrow_mut().rank = rank);
}

/// The rank this thread records as.
pub fn thread_rank() -> usize {
    STREAM.with(|s| s.borrow().rank)
}

/// Push this thread's buffered events to the global registry. `parcomm`
/// calls it when a rank thread finishes; call it on the main thread before
/// [`crate::take_trace`].
pub fn flush_thread() {
    STREAM.with(|s| s.borrow_mut().flush());
}

pub(crate) fn drain_registry() -> Vec<(usize, Vec<Event>)> {
    std::mem::take(&mut *REGISTRY.lock().unwrap_or_else(|p| p.into_inner()))
}

/// RAII span guard. Created by [`span`]; records its `End` event (with
/// panic-abort marking) when dropped. Attach numeric payload with
/// [`Span::arg`] — emitted on the closing event.
#[must_use = "a span measures the scope it lives in; binding it to _ closes it immediately"]
pub struct Span {
    live: bool,
    name: &'static str,
    stage: Stage,
    args: Vec<(&'static str, f64)>,
}

impl Span {
    /// Attach a numeric argument, exported on the span's closing event.
    /// No-op on a disabled-mode span.
    pub fn arg(&mut self, key: &'static str, value: f64) {
        if self.live {
            self.args.push((key, value));
        }
    }

    /// Whether this guard is actually recording (tracing was enabled at
    /// creation).
    pub fn is_recording(&self) -> bool {
        self.live
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let aborted = std::thread::panicking();
        let ts_ns = now_ns();
        STREAM.with(|s| {
            let mut st = s.borrow_mut();
            st.events.push(Event {
                kind: EventKind::End { aborted },
                name: self.name,
                stage: self.stage,
                ts_ns,
                args: std::mem::take(&mut self.args),
            });
            st.depth = st.depth.saturating_sub(1);
            if st.depth == 0 {
                st.flush();
            }
        });
    }
}

/// Open a span. Disabled-mode cost: one relaxed atomic load plus an inert
/// guard (no allocation, no TLS access).
#[inline]
pub fn span(stage: Stage, name: &'static str) -> Span {
    if !enabled() {
        return Span { live: false, name, stage, args: Vec::new() };
    }
    let ts_ns = now_ns();
    STREAM.with(|s| {
        let mut st = s.borrow_mut();
        st.events.push(Event { kind: EventKind::Begin, name, stage, ts_ns, args: Vec::new() });
        st.depth += 1;
    });
    Span { live: true, name, stage, args: Vec::new() }
}

/// Record a point-in-time event with a numeric payload, e.g. one solver
/// iteration's residual norm. Disabled-mode cost: one atomic load.
#[inline]
pub fn instant(stage: Stage, name: &'static str, args: &[(&'static str, f64)]) {
    if !enabled() {
        return;
    }
    let ts_ns = now_ns();
    STREAM.with(|s| {
        let mut st = s.borrow_mut();
        st.events.push(Event {
            kind: EventKind::Instant,
            name,
            stage,
            ts_ns,
            args: args.to_vec(),
        });
        if st.depth == 0 {
            st.flush();
        }
    });
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard};

    /// obskit state is process-global; tests that record serialize on this.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    pub fn exclusive() -> MutexGuard<'static, ()> {
        let g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        // Start from a clean slate: no stale registry batches or counters.
        crate::disable();
        crate::flush_thread();
        let _ = crate::take_trace();
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{disable, enable, take_trace};

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = testutil::exclusive();
        {
            let mut s = span(Stage::Gemm, "g");
            s.arg("bytes", 1.0);
            assert!(!s.is_recording());
        }
        instant(Stage::Diag, "i", &[("x", 1.0)]);
        flush_thread();
        let t = take_trace();
        assert!(t.ranks.is_empty(), "disabled mode must not record");
    }

    #[test]
    fn begin_end_pair_with_args_on_close() {
        let _g = testutil::exclusive();
        enable();
        {
            let mut s = span(Stage::Mpi, "mpi:allreduce");
            s.arg("bytes", 800.0);
        }
        disable();
        flush_thread();
        let t = take_trace();
        assert_eq!(t.ranks.len(), 1);
        let ev = &t.ranks[0].events;
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].kind, EventKind::Begin);
        assert_eq!(ev[1].kind, EventKind::End { aborted: false });
        assert_eq!(ev[1].args, vec![("bytes", 800.0)]);
        assert!(ev[1].ts_ns >= ev[0].ts_ns, "monotonic timestamps");
    }

    #[test]
    fn nested_spans_flush_at_depth_zero() {
        let _g = testutil::exclusive();
        enable();
        {
            let _outer = span(Stage::Diag, "outer");
            {
                let _inner = span(Stage::Mpi, "inner");
            }
            // Not yet flushed: stack depth is 1.
            assert!(crate::span::REGISTRY.lock().unwrap().is_empty());
        }
        disable();
        let t = take_trace();
        assert_eq!(t.ranks[0].events.len(), 4);
        let names: Vec<&str> = t.ranks[0].events.iter().map(|e| e.name).collect();
        assert_eq!(names, ["outer", "inner", "inner", "outer"]);
    }

    #[test]
    fn panicking_span_closes_as_aborted() {
        let _g = testutil::exclusive();
        enable();
        let r = std::thread::spawn(|| {
            set_rank(3);
            let _s = span(Stage::Fft, "doomed");
            panic!("boom");
        })
        .join();
        assert!(r.is_err());
        disable();
        let t = take_trace();
        let stream = t.ranks.iter().find(|r| r.rank == 3).expect("rank 3 stream");
        assert_eq!(stream.events.len(), 2);
        assert_eq!(stream.events[0].kind, EventKind::Begin);
        assert_eq!(stream.events[1].kind, EventKind::End { aborted: true });
    }

    #[test]
    fn instants_outside_spans_flush_immediately() {
        let _g = testutil::exclusive();
        enable();
        instant(Stage::Other, "scf.iter", &[("iter", 1.0), ("residual", 0.5)]);
        disable();
        let t = take_trace();
        assert_eq!(t.ranks[0].events.len(), 1);
        assert_eq!(t.ranks[0].events[0].kind, EventKind::Instant);
        assert_eq!(t.ranks[0].events[0].args.len(), 2);
    }

    #[test]
    fn rank_tagging_separates_streams() {
        let _g = testutil::exclusive();
        enable();
        std::thread::scope(|scope| {
            for rank in 0..4 {
                scope.spawn(move || {
                    set_rank(rank);
                    assert_eq!(thread_rank(), rank);
                    let _s = span(Stage::Gemm, "work");
                });
            }
        });
        disable();
        let t = take_trace();
        let mut ranks: Vec<usize> = t.ranks.iter().map(|r| r.rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }
}
