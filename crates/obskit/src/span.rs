//! RAII span guards, instant events, and the per-thread event streams.
//!
//! Each thread owns a lock-free event buffer; spans push a `Begin` on
//! creation and an `End` on drop. When the thread's open-span stack returns
//! to depth zero the buffer drains into the global registry under one mutex
//! acquisition, keeping hot paths free of shared-state traffic.
//!
//! Every thread additionally carries a process-unique lane id (`tid`) and a
//! human-readable label. Ranks set both via [`set_rank`] (label `"rank N"`);
//! other threads — the main thread, Rayon workers — get distinct lanes named
//! after their OS thread name (or `"thread-N"`), so exported traces no
//! longer collapse every unranked thread into one polluted rank-0 lane.
//!
//! Span closes and instants are also mirrored into the always-on
//! [`crate::flight`] ring so the last moments before a fault are available
//! even with full tracing disabled.

use crate::flight::{self, FlightKind};
use crate::{enabled, now_ns, Stage};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What kind of event a stream entry is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Span opened (Chrome `B`).
    Begin,
    /// Span closed (Chrome `E`). `aborted` means the guard dropped during a
    /// panic unwind — the trace stays well-formed, the span is flagged.
    End { aborted: bool },
    /// Point-in-time marker (Chrome `i`), e.g. a solver-iteration record.
    Instant,
}

/// One entry of a rank's event stream.
#[derive(Clone, Debug)]
pub struct Event {
    pub kind: EventKind,
    /// Static name, e.g. `"mpi:allreduce"` or `"lobpcg.iter"`.
    pub name: &'static str,
    /// Roll-up stage (Chrome `cat`).
    pub stage: Stage,
    /// Monotonic nanoseconds since the session epoch.
    pub ts_ns: u64,
    /// Numeric payload (byte counts, iteration numbers, residuals…).
    pub args: Vec<(&'static str, f64)>,
}

/// One flushed batch of events from a single thread.
pub(crate) struct Batch {
    pub rank: usize,
    pub tid: u64,
    pub label: String,
    pub events: Vec<Event>,
}

/// Global registry of flushed event batches, tagged by (rank, lane).
/// Batches are appended in flush order; within one lane the order is the
/// recording order because a lane is a single thread.
static REGISTRY: Mutex<Vec<Batch>> = Mutex::new(Vec::new());

/// Process-unique lane ids. 0 is the "unassigned" sentinel so the
/// const-initialised thread-local can detect first use.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

struct ThreadStream {
    rank: usize,
    /// True once [`set_rank`] ran on this thread; labels the lane "rank N".
    rank_explicit: bool,
    /// Process-unique lane id; 0 until lazily assigned.
    tid: u64,
    /// Explicit label from [`set_thread_label`], if any.
    label: Option<String>,
    events: Vec<Event>,
    depth: usize,
}

impl ThreadStream {
    const fn new() -> Self {
        ThreadStream {
            rank: 0,
            rank_explicit: false,
            tid: 0,
            label: None,
            events: Vec::new(),
            depth: 0,
        }
    }

    fn tid(&mut self) -> u64 {
        if self.tid == 0 {
            self.tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        }
        self.tid
    }

    fn lane_label(&self) -> String {
        if let Some(l) = &self.label {
            return l.clone();
        }
        if self.rank_explicit {
            return format!("rank {}", self.rank);
        }
        match std::thread::current().name() {
            Some(n) if !n.is_empty() => n.to_string(),
            _ => format!("thread-{}", self.tid),
        }
    }

    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let tid = self.tid();
        let batch = Batch {
            rank: self.rank,
            tid,
            label: self.lane_label(),
            events: std::mem::take(&mut self.events),
        };
        REGISTRY.lock().unwrap_or_else(|p| p.into_inner()).push(batch);
    }
}

impl Drop for ThreadStream {
    // Backstop: a thread exiting with a non-empty buffer (e.g. killed while
    // spans were force-forgotten) still delivers what it recorded.
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static STREAM: RefCell<ThreadStream> = const { RefCell::new(ThreadStream::new()) };
    /// Ambient tenant tag: while set, every span close and instant recorded
    /// by this thread carries a `("tenant", id)` argument. Serving runtimes
    /// set it around each job so one trace of a shared solver group can be
    /// filtered per tenant.
    static TENANT: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

/// Tag (or untag, with `None`) this thread's subsequent events with a tenant
/// id. The tag is ambient: it applies to every span that *closes* and every
/// instant recorded while it is set, and costs one thread-local read per
/// event. Multi-tenant schedulers set it for the duration of a job and clear
/// it after, so co-scheduled tenants never inherit each other's tag.
pub fn set_tenant(tenant: Option<u64>) {
    TENANT.with(|t| t.set(tenant));
}

/// The tenant tag currently set on this thread, if any.
pub fn current_tenant() -> Option<u64> {
    TENANT.with(|t| t.get())
}

/// Tag this thread's event stream with a simulated-MPI rank id. Called by
/// `parcomm::spmd` at rank-thread startup; defaults to 0 elsewhere. The
/// lane label becomes `"rank N"` unless [`set_thread_label`] overrides it.
pub fn set_rank(rank: usize) {
    STREAM.with(|s| {
        let mut st = s.borrow_mut();
        st.rank = rank;
        st.rank_explicit = true;
    });
}

/// Give this thread's trace lane a human-readable name, exported as a
/// Chrome `thread_name` metadata event. Use for worker/service threads that
/// are not SPMD ranks (progress engines, schedulers) so they don't read as
/// anonymous rank-0 activity.
pub fn set_thread_label(label: &str) {
    STREAM.with(|s| s.borrow_mut().label = Some(label.to_string()));
}

/// The rank this thread records as.
pub fn thread_rank() -> usize {
    STREAM.with(|s| s.borrow().rank)
}

/// This thread's process-unique trace lane id (assigning one if needed).
pub fn thread_lane() -> u64 {
    STREAM.with(|s| s.borrow_mut().tid())
}

/// Push this thread's buffered events to the global registry. `parcomm`
/// calls it when a rank thread finishes; call it on the main thread before
/// [`crate::take_trace`].
pub fn flush_thread() {
    STREAM.with(|s| s.borrow_mut().flush());
}

pub(crate) fn drain_registry() -> Vec<Batch> {
    std::mem::take(&mut *REGISTRY.lock().unwrap_or_else(|p| p.into_inner()))
}

/// RAII span guard. Created by [`span`]; records its `End` event (with
/// panic-abort marking) when dropped. Attach numeric payload with
/// [`Span::arg`] — emitted on the closing event.
///
/// Even when full tracing is disabled the guard mirrors one compact event
/// into the [`crate::flight`] ring on drop (a handful of atomic stores).
#[must_use = "a span measures the scope it lives in; binding it to _ closes it immediately"]
pub struct Span {
    live: bool,
    name: &'static str,
    stage: Stage,
    /// Open timestamp, kept even for non-recording guards so the flight
    /// ring can compute the duration.
    t0_ns: u64,
    args: Vec<(&'static str, f64)>,
}

impl Span {
    /// Attach a numeric argument, exported on the span's closing event.
    /// No-op on a disabled-mode span.
    pub fn arg(&mut self, key: &'static str, value: f64) {
        if self.live {
            self.args.push((key, value));
        }
    }

    /// Whether this guard is actually recording (tracing was enabled at
    /// creation).
    pub fn is_recording(&self) -> bool {
        self.live
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let aborted = std::thread::panicking();
        if flight::flight_enabled() {
            let ts_ns = now_ns();
            let kind = if aborted { FlightKind::AbortedSpan } else { FlightKind::Span };
            let arg = self.args.first().map(|&(_, v)| v).unwrap_or(0.0);
            flight::record(
                kind,
                self.stage,
                thread_rank(),
                self.name,
                ts_ns,
                ts_ns.saturating_sub(self.t0_ns),
                arg,
            );
        }
        if !self.live {
            return;
        }
        let ts_ns = now_ns();
        let mut args = std::mem::take(&mut self.args);
        if let Some(t) = current_tenant() {
            args.push(("tenant", t as f64));
        }
        STREAM.with(|s| {
            let mut st = s.borrow_mut();
            st.events.push(Event {
                kind: EventKind::End { aborted },
                name: self.name,
                stage: self.stage,
                ts_ns,
                args,
            });
            st.depth = st.depth.saturating_sub(1);
            if st.depth == 0 {
                st.flush();
            }
        });
    }
}

/// Open a span. Disabled-mode cost: one relaxed atomic load, a clock read
/// for the flight ring, and an inert guard (no allocation, no TLS access).
#[inline]
pub fn span(stage: Stage, name: &'static str) -> Span {
    if !enabled() {
        let t0_ns = if flight::flight_enabled() { now_ns() } else { 0 };
        return Span { live: false, name, stage, t0_ns, args: Vec::new() };
    }
    let ts_ns = now_ns();
    STREAM.with(|s| {
        let mut st = s.borrow_mut();
        st.events.push(Event { kind: EventKind::Begin, name, stage, ts_ns, args: Vec::new() });
        st.depth += 1;
    });
    Span { live: true, name, stage, t0_ns: ts_ns, args: Vec::new() }
}

/// Record a point-in-time event with a numeric payload, e.g. one solver
/// iteration's residual norm. Disabled-mode cost: one atomic load plus the
/// flight-ring mirror.
#[inline]
pub fn instant(stage: Stage, name: &'static str, args: &[(&'static str, f64)]) {
    if flight::flight_enabled() {
        let arg = args.first().map(|&(_, v)| v).unwrap_or(0.0);
        flight::record(
            FlightKind::Instant,
            stage,
            thread_rank(),
            name,
            now_ns(),
            0,
            arg,
        );
    }
    if !enabled() {
        return;
    }
    let ts_ns = now_ns();
    let mut args = args.to_vec();
    if let Some(t) = current_tenant() {
        args.push(("tenant", t as f64));
    }
    STREAM.with(|s| {
        let mut st = s.borrow_mut();
        st.events.push(Event {
            kind: EventKind::Instant,
            name,
            stage,
            ts_ns,
            args,
        });
        if st.depth == 0 {
            st.flush();
        }
    });
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard};

    /// obskit state is process-global; tests that record serialize on this.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    pub fn exclusive() -> MutexGuard<'static, ()> {
        let g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        // Start from a clean slate: no stale registry batches or counters.
        crate::disable();
        crate::flush_thread();
        let _ = crate::take_trace();
        crate::flight::clear();
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{disable, enable, take_trace};

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = testutil::exclusive();
        {
            let mut s = span(Stage::Gemm, "g");
            s.arg("bytes", 1.0);
            assert!(!s.is_recording());
        }
        instant(Stage::Diag, "i", &[("x", 1.0)]);
        flush_thread();
        let t = take_trace();
        assert!(t.ranks.is_empty(), "disabled mode must not record");
    }

    #[test]
    fn disabled_spans_still_feed_the_flight_ring() {
        let _g = testutil::exclusive();
        {
            let _s = span(Stage::Gemm, "flight.only");
        }
        instant(Stage::Diag, "flight.instant", &[("x", 7.0)]);
        let snap = crate::flight::snapshot();
        let sp = snap
            .iter()
            .find(|e| e.name == "flight.only")
            .expect("span mirrored to flight ring");
        assert_eq!(sp.kind, FlightKind::Span);
        let inst = snap.iter().find(|e| e.name == "flight.instant").unwrap();
        assert_eq!(inst.kind, FlightKind::Instant);
        assert_eq!(inst.arg, 7.0);
    }

    #[test]
    fn begin_end_pair_with_args_on_close() {
        let _g = testutil::exclusive();
        enable();
        {
            let mut s = span(Stage::Mpi, "mpi:allreduce");
            s.arg("bytes", 800.0);
        }
        disable();
        flush_thread();
        let t = take_trace();
        assert_eq!(t.ranks.len(), 1);
        let ev = &t.ranks[0].events;
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].kind, EventKind::Begin);
        assert_eq!(ev[1].kind, EventKind::End { aborted: false });
        assert_eq!(ev[1].args, vec![("bytes", 800.0)]);
        assert!(ev[1].ts_ns >= ev[0].ts_ns, "monotonic timestamps");
    }

    #[test]
    fn nested_spans_flush_at_depth_zero() {
        let _g = testutil::exclusive();
        enable();
        {
            let _outer = span(Stage::Diag, "outer");
            {
                let _inner = span(Stage::Mpi, "inner");
            }
            // Not yet flushed: stack depth is 1.
            assert!(crate::span::REGISTRY.lock().unwrap().is_empty());
        }
        disable();
        let t = take_trace();
        assert_eq!(t.ranks[0].events.len(), 4);
        let names: Vec<&str> = t.ranks[0].events.iter().map(|e| e.name).collect();
        assert_eq!(names, ["outer", "inner", "inner", "outer"]);
    }

    #[test]
    fn panicking_span_closes_as_aborted() {
        let _g = testutil::exclusive();
        enable();
        let r = std::thread::spawn(|| {
            set_rank(3);
            let _s = span(Stage::Fft, "doomed");
            panic!("boom");
        })
        .join();
        assert!(r.is_err());
        disable();
        let t = take_trace();
        let stream = t.ranks.iter().find(|r| r.rank == 3).expect("rank 3 stream");
        assert_eq!(stream.events.len(), 2);
        assert_eq!(stream.events[0].kind, EventKind::Begin);
        assert_eq!(stream.events[1].kind, EventKind::End { aborted: true });
        assert_eq!(stream.label, "rank 3");
    }

    #[test]
    fn instants_outside_spans_flush_immediately() {
        let _g = testutil::exclusive();
        enable();
        instant(Stage::Other, "scf.iter", &[("iter", 1.0), ("residual", 0.5)]);
        disable();
        let t = take_trace();
        assert_eq!(t.ranks[0].events.len(), 1);
        assert_eq!(t.ranks[0].events[0].kind, EventKind::Instant);
        assert_eq!(t.ranks[0].events[0].args.len(), 2);
    }

    #[test]
    fn rank_tagging_separates_streams() {
        let _g = testutil::exclusive();
        enable();
        std::thread::scope(|scope| {
            for rank in 0..4 {
                scope.spawn(move || {
                    set_rank(rank);
                    assert_eq!(thread_rank(), rank);
                    let _s = span(Stage::Gemm, "work");
                });
            }
        });
        disable();
        let t = take_trace();
        let mut ranks: Vec<usize> = t.ranks.iter().map(|r| r.rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn tenant_tag_scopes_to_the_window_it_is_set_in() {
        let _g = testutil::exclusive();
        enable();
        {
            let _s = span(Stage::Diag, "untagged.before");
        }
        set_tenant(Some(7));
        {
            let mut s = span(Stage::Diag, "tagged");
            s.arg("bytes", 1.0);
        }
        instant(Stage::Other, "tagged.instant", &[]);
        set_tenant(None);
        {
            let _s = span(Stage::Diag, "untagged.after");
        }
        disable();
        flush_thread();
        let t = take_trace();
        let events: Vec<&Event> =
            t.ranks.iter().flat_map(|r| r.events.iter()).collect();
        let tenant_of = |name: &str| {
            events
                .iter()
                .filter(|e| e.name == name && e.kind != EventKind::Begin)
                .flat_map(|e| e.args.iter())
                .find(|(k, _)| *k == "tenant")
                .map(|&(_, v)| v)
        };
        assert_eq!(tenant_of("untagged.before"), None);
        assert_eq!(tenant_of("tagged"), Some(7.0));
        assert_eq!(tenant_of("tagged.instant"), Some(7.0));
        assert_eq!(tenant_of("untagged.after"), None, "tag must not leak past clear");
        // Explicit args survive alongside the tag.
        let tagged_close = events
            .iter()
            .find(|e| e.name == "tagged" && matches!(e.kind, EventKind::End { .. }))
            .unwrap();
        assert!(tagged_close.args.contains(&("bytes", 1.0)));
    }

    #[test]
    fn unranked_threads_get_distinct_labelled_lanes() {
        let _g = testutil::exclusive();
        enable();
        std::thread::scope(|scope| {
            for i in 0..2 {
                scope.spawn(move || {
                    set_thread_label(if i == 0 { "worker-a" } else { "worker-b" });
                    let _s = span(Stage::Gemm, "work");
                });
            }
        });
        disable();
        let t = take_trace();
        // Both threads defaulted to rank 0 but must land in separate lanes.
        assert_eq!(t.ranks.len(), 2, "one lane per thread, not one merged rank-0 lane");
        let mut labels: Vec<&str> = t.ranks.iter().map(|r| r.label.as_str()).collect();
        labels.sort_unstable();
        assert_eq!(labels, ["worker-a", "worker-b"]);
        assert_ne!(t.ranks[0].tid, t.ranks[1].tid);
    }
}
