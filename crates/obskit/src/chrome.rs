//! Chrome Trace Event Format export and validation.
//!
//! [`chrome_trace_json`] serialises a [`Trace`] as `{"traceEvents":[...]}`
//! with one process row per simulated MPI rank (`pid` = rank) and one lane
//! per thread (`tid` = process-unique lane id), `B`/`E` duration events for
//! spans, `i` instant events, and `thread_name` metadata (`M`) events
//! labelling each lane (`"rank 2"`, `"progress-1"`, …). The output loads in
//! `chrome://tracing` and Perfetto.
//!
//! [`validate_chrome_trace`] re-parses exported (or externally produced)
//! JSON with the minimal recursive-descent parser below and checks the
//! schema: `traceEvents` is an array, every event carries
//! `name`/`ph`/`ts`/`pid`/`tid`, and per-`(pid,tid)` lane every `B` has a
//! matching `E` in stack order. Complete (`X`) events — used by the flight
//! recorder — and metadata (`M`) events are accepted. `repro trace-report
//! --check` builds on it.

use crate::span::EventKind;
use crate::trace::Trace;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Serialise a [`Trace`] in Chrome Trace Event Format. Timestamps are
/// microseconds since the session epoch (the format's unit); span/instant
/// args become the event `args` object; the roll-up stage is the `cat`.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for rank in &trace.ranks {
        // Label the lane so unranked worker threads are distinguishable.
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{},\"tid\":{},\"args\":{{\"name\":{}}}}}",
            rank.rank,
            rank.tid,
            escape(&rank.label),
        );
        for ev in &rank.events {
            out.push(',');
            let ph = match ev.kind {
                EventKind::Begin => "B",
                EventKind::End { .. } => "E",
                EventKind::Instant => "i",
            };
            let ts_us = ev.ts_ns as f64 / 1e3;
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"{ph}\",\"ts\":{ts_us:.3},\"pid\":{},\"tid\":{}",
                escape(ev.name),
                ev.stage.label(),
                rank.rank,
                rank.tid,
            );
            if ev.kind == EventKind::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            let aborted = matches!(ev.kind, EventKind::End { aborted: true });
            if !ev.args.is_empty() || aborted {
                out.push_str(",\"args\":{");
                let mut afirst = true;
                for (k, v) in &ev.args {
                    if !afirst {
                        out.push(',');
                    }
                    afirst = false;
                    let _ = write!(out, "{}:{}", escape(k), fmt_number(*v));
                }
                if aborted {
                    if !afirst {
                        out.push(',');
                    }
                    out.push_str("\"aborted\":true");
                }
                out.push('}');
            }
            out.push('}');
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Escape a string as a JSON string literal (quotes included). Shared with
/// the flight-recorder dump.
pub(crate) fn escape_json_string(s: &str) -> String {
    escape(s)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_number(v: f64) -> String {
    if !v.is_finite() {
        // JSON has no Infinity/NaN; clamp to null-ish sentinel.
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON value model + recursive-descent parser (no external deps).
// ---------------------------------------------------------------------------

/// Minimal JSON value for trace validation.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Parse a JSON document. Strict enough for trace files: objects, arrays,
/// strings with escapes, numbers, booleans, null; trailing garbage is an
/// error.
pub fn parse_json(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

/// What [`validate_chrome_trace`] learned about a well-formed trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChromeTraceStats {
    /// Distinct `(pid, tid)` lanes (one per simulated rank).
    pub lanes: usize,
    /// Complete `B`/`E` span pairs.
    pub spans: usize,
    /// `i` instant events.
    pub instants: usize,
    /// Metadata (`M`) events, e.g. `thread_name` lane labels.
    pub metadata: usize,
    /// Distinct `cat` values seen, sorted.
    pub categories: Vec<String>,
}

/// Validate Chrome-trace JSON produced by [`chrome_trace_json`] (or any
/// conforming producer): structural JSON validity, required event fields,
/// and per-lane stack-ordered `B`/`E` matching. Returns summary stats on
/// success, a descriptive error on the first violation.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceStats, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing 'traceEvents' key")?
        .as_array()
        .ok_or("'traceEvents' is not an array")?;

    let mut stats = ChromeTraceStats::default();
    let mut lanes: HashMap<(i64, i64), Vec<String>> = HashMap::new();
    let mut cats: Vec<String> = Vec::new();

    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Value::as_str)
            .ok_or(format!("event {i}: missing string 'name'"))?;
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or(format!("event {i}: missing string 'ph'"))?;
        ev.get("ts")
            .and_then(Value::as_f64)
            .ok_or(format!("event {i}: missing numeric 'ts'"))?;
        let pid = ev
            .get("pid")
            .and_then(Value::as_f64)
            .ok_or(format!("event {i}: missing numeric 'pid'"))? as i64;
        let tid = ev
            .get("tid")
            .and_then(Value::as_f64)
            .ok_or(format!("event {i}: missing numeric 'tid'"))? as i64;
        if let Some(cat) = ev.get("cat").and_then(Value::as_str) {
            if !cats.iter().any(|c| c == cat) {
                cats.push(cat.to_string());
            }
        }
        if ph == "M" {
            // Metadata events label lanes; they don't open one themselves.
            stats.metadata += 1;
            continue;
        }
        let stack = lanes.entry((pid, tid)).or_default();
        match ph {
            "B" => stack.push(name.to_string()),
            "E" => {
                let open = stack.pop().ok_or(format!(
                    "event {i}: 'E' for '{name}' on lane ({pid},{tid}) with no open 'B'"
                ))?;
                if open != name {
                    return Err(format!(
                        "event {i}: 'E' for '{name}' does not match open 'B' for '{open}' on lane ({pid},{tid})"
                    ));
                }
                stats.spans += 1;
            }
            "X" => {
                // Complete event: a self-contained span, no stack involvement.
                ev.get("dur")
                    .and_then(Value::as_f64)
                    .ok_or(format!("event {i}: 'X' event missing numeric 'dur'"))?;
                stats.spans += 1;
            }
            "i" | "I" => stats.instants += 1,
            other => return Err(format!("event {i}: unsupported phase '{other}'")),
        }
    }
    for ((pid, tid), stack) in &lanes {
        if let Some(open) = stack.last() {
            return Err(format!("lane ({pid},{tid}): span '{open}' never closed"));
        }
    }
    stats.lanes = lanes.len();
    cats.sort();
    stats.categories = cats;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::testutil;
    use crate::{disable, enable, instant, span, take_trace, Stage};

    #[test]
    fn export_roundtrips_through_validator() {
        let _g = testutil::exclusive();
        enable();
        {
            let _outer = span(Stage::Diag, "diag");
            {
                let mut m = span(Stage::Mpi, "mpi:allreduce");
                m.arg("bytes", 4096.0);
            }
            instant(Stage::Diag, "lobpcg.iter", &[("iter", 2.0), ("resid", 1e-6)]);
        }
        disable();
        let t = take_trace();
        let json = chrome_trace_json(&t);
        let stats = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(stats.lanes, 1);
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.instants, 1);
        assert!(stats.categories.contains(&"mpi".to_string()));
        assert!(stats.categories.contains(&"diag".to_string()));
    }

    #[test]
    fn validator_rejects_unbalanced_lanes() {
        let json = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":0,"pid":0,"tid":0}
        ]}"#;
        let err = validate_chrome_trace(json).unwrap_err();
        assert!(err.contains("never closed"), "{err}");
    }

    #[test]
    fn validator_rejects_mismatched_close() {
        let json = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":0,"pid":0,"tid":0},
            {"name":"b","ph":"E","ts":1,"pid":0,"tid":0}
        ]}"#;
        let err = validate_chrome_trace(json).unwrap_err();
        assert!(err.contains("does not match"), "{err}");
    }

    #[test]
    fn validator_rejects_missing_fields() {
        let json = r#"{"traceEvents":[{"ph":"B","ts":0,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(json).unwrap_err().contains("'name'"));
        let json = r#"{"traceEvents":[{"name":"a","ph":"B","ts":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(json).unwrap_err().contains("'pid'"));
    }

    #[test]
    fn validator_rejects_malformed_json() {
        assert!(validate_chrome_trace("{not json").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents":7}"#).is_err());
        assert!(validate_chrome_trace(r#"{"other":[]}"#).is_err());
    }

    #[test]
    fn lanes_follow_rank_ids() {
        let _g = testutil::exclusive();
        enable();
        std::thread::scope(|s| {
            for rank in 0..4 {
                s.spawn(move || {
                    crate::set_rank(rank);
                    let _sp = span(Stage::Gemm, "work");
                });
            }
        });
        disable();
        let t = take_trace();
        let stats = validate_chrome_trace(&chrome_trace_json(&t)).unwrap();
        assert_eq!(stats.lanes, 4);
        assert_eq!(stats.spans, 4);
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let v = parse_json(r#"{"s":"a\"b\\c\ndA","n":[-1.5e3,0,12]}"#).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("a\"b\\c\ndA"));
        let arr = v.get("n").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(-1500.0));
        assert_eq!(arr[2].as_f64(), Some(12.0));
    }

    #[test]
    fn escape_produces_valid_json_strings() {
        let s = escape("he said \"hi\"\n\ttab\\end");
        let parsed = parse_json(&s).unwrap();
        assert_eq!(parsed.as_str(), Some("he said \"hi\"\n\ttab\\end"));
    }
}
