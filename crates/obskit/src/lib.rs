//! # obskit — span-based tracing and metrics substrate
//!
//! Low-overhead observability for the whole LR-TDDFT workspace: RAII span
//! guards with parent/child nesting, monotonic timestamps, typed counters
//! (flops, bytes moved, FFT calls, a GEMM shape histogram), and per-rank
//! event streams, plus three exporters:
//!
//! * [`chrome::chrome_trace_json`] — Chrome Trace Event Format JSON,
//!   loadable in `chrome://tracing` / Perfetto, one lane per simulated MPI
//!   rank (`pid` = rank id);
//! * [`trace::Trace::summary_tree`] — a human-readable hierarchical call
//!   tree with per-node total/self time;
//! * per-stage second rollups ([`trace::Trace::stage_seconds_for_rank`]) that feed
//!   the machine-readable `BENCH_trace.json` and the `StageTimings`
//!   compatibility view in `lrtddft::timers`.
//!
//! ## Overhead budget
//!
//! Recording is **disabled by default**. Every instrumentation entry point
//! ([`span`], [`instant`], the counter adders) starts with a single relaxed
//! atomic load and returns immediately when tracing is off — hot kernels
//! (the packed GEMM microkernel path) pay ~1 ns per call. When enabled,
//! events go to a thread-local buffer (no locks); the buffer drains into the
//! global registry only when the thread's span stack returns to depth zero,
//! so lock traffic is one mutex acquisition per *top-level* span, not per
//! event.
//!
//! ## Ranks and lanes
//!
//! The simulated MPI runtime (`parcomm`) runs each rank on its own OS
//! thread; [`set_rank`] tags the calling thread's stream (lane label
//! `"rank N"`). Threads that never call it — the main thread, Rayon
//! workers, progress engines — still record under rank 0 but each gets its
//! own trace lane, named via [`set_thread_label`] or the OS thread name, so
//! worker activity no longer pollutes the rank-0 timeline.
//!
//! ## Flight recorder
//!
//! Independently of full tracing, every span close and instant is mirrored
//! into [`flight`] — a bounded lock-free ring of recent events that stays
//! on even when tracing is disabled. `faultkit`'s recovery ladders dump it
//! as a Chrome trace on any `SolveError`, so recovered faults ship with
//! their last-N-events context.
//!
//! ## Panic safety
//!
//! A [`Span`] dropped during unwinding still closes with its correct
//! duration and is marked `aborted`, so traces exported from failed runs
//! remain well-formed (every `B` has a matching `E`).

pub mod chrome;
pub mod counters;
pub mod flight;
pub mod serve;
pub mod span;
pub mod trace;

pub use counters::{
    add_bytes_moved, add_comm_segments, add_flops, add_fft_calls, add_fft_plan_hit,
    add_fft_plan_miss, record_gemm_shape, record_kernel_dispatch, CounterSnapshot,
};
pub use serve::{
    add_serve_breaker_open, add_serve_deadline_miss, add_serve_degraded, add_serve_group_unhealthy,
    add_serve_retry, serve_counters, take_serve_counters, ServeCounters,
};
pub use span::{
    current_tenant, flush_thread, instant, set_rank, set_tenant, set_thread_label, span,
    thread_lane, thread_rank, Event, EventKind, Span,
};
pub use trace::{take_trace, RankTrace, Trace};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Is recording on? One relaxed atomic load — the only cost every
/// instrumentation site pays when tracing is disabled.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on (idempotent). Pins the session epoch on first use so
/// all timestamps share one monotonic origin.
pub fn enable() {
    epoch();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn recording off. Spans already open still close correctly (their
/// guards stay live); new spans become no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// The session epoch all timestamps are measured from.
pub(crate) fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the session epoch.
#[inline]
pub(crate) fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Pipeline stage a span rolls up into — mirrors the eight fields of
/// `lrtddft::StageTimings` (paper Fig. 8 breakdown) plus a catch-all.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Weighted K-Means interpolation-point selection.
    Kmeans,
    /// QRCP interpolation-point selection.
    Qrcp,
    /// Face-splitting product construction.
    FaceSplit,
    /// ISDF interpolation-vector (Θ) solve.
    Theta,
    /// FFT work (f_Hxc kernel applications).
    Fft,
    /// Dense contractions building V_Hxc / Ṽ_Hxc / H.
    Gemm,
    /// Communication — collectives in the simulated MPI runtime.
    Mpi,
    /// Diagonalization (SYEV or LOBPCG).
    Diag,
    /// Anything else (SCF, setup, reporting…). Not part of `StageTimings`.
    Other,
}

impl Stage {
    /// Every stage, in `StageTimings` field order (`Other` last).
    pub const ALL: [Stage; 9] = [
        Stage::Kmeans,
        Stage::Qrcp,
        Stage::FaceSplit,
        Stage::Theta,
        Stage::Fft,
        Stage::Gemm,
        Stage::Mpi,
        Stage::Diag,
        Stage::Other,
    ];

    /// Stable label used as the Chrome-trace `cat` and in JSON reports.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Kmeans => "kmeans",
            Stage::Qrcp => "qrcp",
            Stage::FaceSplit => "face_split",
            Stage::Theta => "theta",
            Stage::Fft => "fft",
            Stage::Gemm => "gemm",
            Stage::Mpi => "mpi",
            Stage::Diag => "diag",
            Stage::Other => "other",
        }
    }

    /// Index into [`Stage::ALL`]-ordered arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Stage::Kmeans => 0,
            Stage::Qrcp => 1,
            Stage::FaceSplit => 2,
            Stage::Theta => 3,
            Stage::Fft => 4,
            Stage::Gemm => 5,
            Stage::Mpi => 6,
            Stage::Diag => 7,
            Stage::Other => 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_index_roundtrips() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn labels_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in Stage::ALL {
            assert!(seen.insert(s.label()), "duplicate label {}", s.label());
        }
    }

    #[test]
    fn disabled_span_is_noop() {
        let _g = crate::span::testutil::exclusive(); // leaves tracing disabled
        assert!(!enabled());
        let s = span(Stage::Other, "noop-check");
        assert!(!s.is_recording());
        drop(s);
        assert!(take_trace().ranks.is_empty());
    }
}
