//! Simulation cell and real-space grid.

use fftkit::poisson::signed_freq;
use fftkit::Fft3;

/// Orthorhombic periodic cell with side lengths in Bohr.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Cell {
    pub lengths: [f64; 3],
}

impl Cell {
    pub fn cubic(l: f64) -> Self {
        Cell { lengths: [l, l, l] }
    }

    pub fn new(l1: f64, l2: f64, l3: f64) -> Self {
        Cell { lengths: [l1, l2, l3] }
    }

    /// Cell volume (Bohr³).
    pub fn volume(&self) -> f64 {
        self.lengths.iter().product()
    }

    /// Reciprocal lattice vector magnitudes `2π/L_i`.
    pub fn recip(&self) -> [f64; 3] {
        [
            2.0 * std::f64::consts::PI / self.lengths[0],
            2.0 * std::f64::consts::PI / self.lengths[1],
            2.0 * std::f64::consts::PI / self.lengths[2],
        ]
    }

    /// Minimum-image displacement from `a` to `b`.
    pub fn min_image(&self, a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
        let mut d = [0.0; 3];
        for c in 0..3 {
            let l = self.lengths[c];
            let mut x = b[c] - a[c];
            x -= l * (x / l).round();
            d[c] = x;
        }
        d
    }
}

/// Real-space grid over a [`Cell`] with its FFT plan and `|G|²` table.
#[derive(Clone, Debug)]
pub struct Grid {
    pub cell: Cell,
    pub n: [usize; 3],
    plan: Fft3,
    /// `|G|²` per grid point (Fourier-bin ordering of the plan).
    g2: Vec<f64>,
}

impl Grid {
    /// Build a grid with explicit dimensions.
    pub fn new(cell: Cell, n: [usize; 3]) -> Self {
        let plan = Fft3::new(n[0], n[1], n[2]);
        let b = cell.recip();
        let mut g2 = vec![0.0; plan.len()];
        for i3 in 0..n[2] {
            let g3 = signed_freq(i3, n[2]) as f64 * b[2];
            for i2 in 0..n[1] {
                let g2v = signed_freq(i2, n[1]) as f64 * b[1];
                for i1 in 0..n[0] {
                    let g1 = signed_freq(i1, n[0]) as f64 * b[0];
                    g2[plan.idx(i1, i2, i3)] = g1 * g1 + g2v * g2v + g3 * g3;
                }
            }
        }
        Grid { cell, n, plan, g2 }
    }

    /// Grid from a kinetic-energy cutoff (Hartree) via the paper's formula
    /// `(N_r)_i = √(2E_cut)·L_i/π`, rounded up to the next power of two for
    /// radix-2 FFTs (the paper similarly picks FFT-friendly dimensions).
    pub fn for_cutoff(cell: Cell, ecut: f64) -> Self {
        let mut n = [0usize; 3];
        for (nc, len) in n.iter_mut().zip(cell.lengths.iter()) {
            let raw = ((2.0 * ecut).sqrt() * len / std::f64::consts::PI).ceil();
            *nc = (raw as usize).max(4).next_power_of_two();
        }
        Grid::new(cell, n)
    }

    /// Total number of real-space grid points `N_r`.
    #[inline]
    pub fn len(&self) -> usize {
        self.plan.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Volume element `ΔV = Ω / N_r`.
    #[inline]
    pub fn dv(&self) -> f64 {
        self.cell.volume() / self.len() as f64
    }

    /// Shared FFT plan.
    #[inline]
    pub fn plan(&self) -> &Fft3 {
        &self.plan
    }

    /// `|G|²` lookup table (plan ordering).
    #[inline]
    pub fn g2(&self) -> &[f64] {
        &self.g2
    }

    /// Cartesian coordinates of flat grid index `idx`.
    pub fn coords(&self, idx: usize) -> [f64; 3] {
        let n1 = self.n[0];
        let n2 = self.n[1];
        let i1 = idx % n1;
        let i2 = (idx / n1) % n2;
        let i3 = idx / (n1 * n2);
        [
            i1 as f64 * self.cell.lengths[0] / self.n[0] as f64,
            i2 as f64 * self.cell.lengths[1] / self.n[1] as f64,
            i3 as f64 * self.cell.lengths[2] / self.n[2] as f64,
        ]
    }

    /// Flat index from integer coordinates.
    #[inline]
    pub fn idx(&self, i1: usize, i2: usize, i3: usize) -> usize {
        self.plan.idx(i1, i2, i3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_recip() {
        let cell = Cell::new(2.0, 4.0, 5.0);
        assert_eq!(cell.volume(), 40.0);
        let b = cell.recip();
        assert!((b[0] - std::f64::consts::PI).abs() < 1e-15);
    }

    #[test]
    fn min_image_wraps() {
        let cell = Cell::cubic(10.0);
        let d = cell.min_image([1.0, 1.0, 1.0], [9.5, 1.0, 1.0]);
        assert!((d[0] + 1.5).abs() < 1e-12, "{d:?}");
        let d = cell.min_image([0.0, 0.0, 0.0], [4.9, 0.0, 0.0]);
        assert!((d[0] - 4.9).abs() < 1e-12);
    }

    #[test]
    fn cutoff_grid_follows_paper_formula() {
        // Paper: Si4096 cell at Ecut=20 Ha gives 166 points per axis before
        // FFT rounding. Reproduce the formula at our scale.
        let cell = Cell::cubic(10.0);
        let g = Grid::for_cutoff(cell, 20.0);
        let raw = ((2.0f64 * 20.0).sqrt() * 10.0 / std::f64::consts::PI).ceil() as usize;
        assert!(g.n[0] >= raw);
        assert!(g.n[0].is_power_of_two());
    }

    #[test]
    fn dv_times_n_is_volume() {
        let g = Grid::new(Cell::new(3.0, 4.0, 5.0), [4, 8, 4]);
        assert!((g.dv() * g.len() as f64 - 60.0).abs() < 1e-12);
    }

    #[test]
    fn coords_cover_cell() {
        let g = Grid::new(Cell::cubic(8.0), [4, 4, 4]);
        let first = g.coords(0);
        assert_eq!(first, [0.0, 0.0, 0.0]);
        let last = g.coords(g.len() - 1);
        for v in last {
            assert!((v - 6.0).abs() < 1e-12); // 3/4 * 8
        }
    }

    #[test]
    fn g2_zero_only_at_origin() {
        let g = Grid::new(Cell::cubic(5.0), [4, 4, 4]);
        assert_eq!(g.g2()[0], 0.0);
        assert!(g.g2()[1..].iter().all(|&v| v > 0.0));
    }

    #[test]
    fn g2_matches_manual() {
        let g = Grid::new(Cell::cubic(2.0 * std::f64::consts::PI), [4, 4, 4]);
        // b = 1 → |G|² at bin (1,0,0) is 1, at (3,0,0) ≡ -1 is 1, at (2,0,0) is 4.
        assert!((g.g2()[g.idx(1, 0, 0)] - 1.0).abs() < 1e-12);
        assert!((g.g2()[g.idx(3, 0, 0)] - 1.0).abs() < 1e-12);
        assert!((g.g2()[g.idx(2, 0, 0)] - 4.0).abs() < 1e-12);
        assert!((g.g2()[g.idx(1, 1, 1)] - 3.0).abs() < 1e-12);
    }
}
