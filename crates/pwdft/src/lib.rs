//! # pwdft — plane-wave Kohn–Sham DFT ground-state substrate
//!
//! The LR-TDDFT calculation consumes ground-state orbitals `ψ_i(r)` and
//! energies `ε_i` "typically obtained via ground-state Kohn–Sham DFT
//! calculations" (paper §3). The original work obtains them from PWDFT; we
//! build an equivalent Γ-point plane-wave DFT mini-app from scratch:
//!
//! * [`cell`] — orthorhombic simulation cells and real-space grids derived
//!   from a kinetic-energy cutoff via the paper's `(N_r)_i = √(2E_cut)·L_i/π`,
//! * [`structures`] — the paper's test systems: diamond-silicon supercells
//!   (Si₈ … Si₄₀₉₆ scaled down), a water molecule in a box, and a bilayer
//!   graphene Moiré cell standing in for MATBG,
//! * [`pseudo`] — GTH/HGH-style *local* pseudopotentials evaluated
//!   analytically in reciprocal space,
//! * [`xc`] — LDA exchange-correlation (Slater + Perdew–Zunger) with the
//!   analytic `f_xc = ∂V_xc/∂n` kernel LR-TDDFT needs,
//! * [`hamiltonian`] — the Kohn–Sham operator `−½∇² + V_eff` applied via FFT,
//! * [`scf`] — self-consistent field loop with LOBPCG band solver and
//!   density mixing,
//! * [`dos`] — Gaussian-broadened densities of states (paper Fig. 9).
//!
//! Everything is Hartree atomic units; lengths in Bohr.

pub mod cell;
pub mod dos;
pub mod energy;
pub mod ewald;
pub mod hamiltonian;
pub mod pseudo;
pub mod scf;
pub mod structures;
pub mod xc;

pub use cell::{Cell, Grid};
pub use dos::gaussian_dos;
pub use hamiltonian::KsHamiltonian;
pub use pseudo::{local_potential, Species};
pub use energy::{total_energy, EnergyBreakdown};
pub use ewald::{erf, erfc, ewald_energy, ion_ion_energy};
pub use scf::{scf, GroundState, MixingScheme, ScfOptions};
pub use structures::{bilayer_graphene, silicon_supercell, water_in_box, Atom, Structure};
pub use xc::{fxc_lda, vxc_lda, XcLda};

/// 1 Å in Bohr.
pub const ANGSTROM: f64 = 1.889_726_124_565_062;
