//! Total-energy assembly with the standard double-counting corrections.
//!
//! ```text
//! E_total = Σ_i f_i ε_i  −  E_H[n]  −  ∫ V_xc n dr  +  E_xc[n]
//!         + E_ewald + E_{G=0}
//! ```
//!
//! The band-structure energy double-counts Hartree (once per electron pair)
//! and replaces ∫V_xc n with E_xc. `E_{G=0}` is the non-Coulombic `G → 0`
//! limit of the local pseudopotential (finite for GTH-form potentials),
//! which the SCF dropped together with the divergent Coulomb part.

use crate::cell::Grid;
use crate::ewald::ion_ion_energy;
use crate::pseudo::Species;
use crate::scf::GroundState;
use crate::structures::Structure;
use crate::xc::{exc_lda, vxc_lda};
use fftkit::{hartree_energy, PoissonSolver};

/// Itemized total energy (Hartree units).
#[derive(Clone, Copy, Debug, Default)]
pub struct EnergyBreakdown {
    /// `Σ f_i ε_i` over occupied bands.
    pub band: f64,
    /// Hartree energy `E_H[n]` (subtracted once from the band sum).
    pub hartree: f64,
    /// `∫ V_xc n dr` (double-counting correction).
    pub vxc_int: f64,
    /// `E_xc[n] = ∫ n ε_xc dr`.
    pub exc: f64,
    /// Ion–ion Ewald energy.
    pub ewald: f64,
    /// `G = 0` pseudopotential correction `N_e · Σ_a α_a / Ω`.
    pub g0: f64,
}

impl EnergyBreakdown {
    /// The assembled total.
    pub fn total(&self) -> f64 {
        self.band - self.hartree - self.vxc_int + self.exc + self.ewald + self.g0
    }
}

/// Non-Coulombic `G → 0` limit of one species' local pseudopotential times Ω:
/// `α = ∫ (V_loc(r) + Z/r) dr = 2π Z r_loc² + (2π)^{3/2} r_loc³ (C₁ + 3C₂)`.
pub fn g0_alpha(species: Species) -> f64 {
    let rl = species.r_loc();
    let z = species.z_ion();
    let (c1, c2) = species.c_coeffs();
    2.0 * std::f64::consts::PI * z * rl * rl
        + (2.0 * std::f64::consts::PI).powf(1.5) * rl.powi(3) * (c1 + 3.0 * c2)
}

/// Assemble the total energy of a converged ground state.
pub fn total_energy(grid: &Grid, structure: &Structure, gs: &GroundState) -> EnergyBreakdown {
    let dv = grid.dv();
    let ne = structure.n_electrons() as f64;

    // Band-structure energy: doubly-occupied valence bands.
    let band: f64 = gs.eps[..gs.n_valence].iter().map(|e| 2.0 * e).sum();

    // Hartree double counting.
    let poisson = PoissonSolver::new(grid.plan(), grid.cell.lengths);
    let v_h = poisson.hartree_potential(&gs.density);
    let hartree = hartree_energy(&gs.density, &v_h, dv);

    // XC pieces.
    let vxc_int: f64 = gs.density.iter().map(|&n| vxc_lda(n) * n).sum::<f64>() * dv;
    let exc: f64 = gs.density.iter().map(|&n| exc_lda(n) * n).sum::<f64>() * dv;

    let ewald = ion_ion_energy(structure);
    let alpha_sum: f64 = structure.atoms.iter().map(|a| g0_alpha(a.species)).sum();
    let g0 = ne * alpha_sum / grid.cell.volume();

    EnergyBreakdown { band, hartree, vxc_int, exc, ewald, g0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, Grid};
    use crate::scf::{scf, ScfOptions};
    use crate::structures::{silicon_supercell, Atom};

    fn quick_gs(grid: &Grid, s: &Structure) -> GroundState {
        scf(
            grid,
            s,
            ScfOptions {
                n_conduction: 2,
                max_iter: 8,
                band_max_iter: 20,
                density_tol: 1e-4,
                ..Default::default()
            },
        )
    }

    #[test]
    fn g0_alpha_positive_for_si() {
        // 2πZr² term dominates the (negative) C₁ term for silicon.
        let a = g0_alpha(Species::Si);
        assert!(a.is_finite());
        // reference: 2π·4·0.44² + (2π)^1.5·0.44³·(−7.336103)
        let expect = 2.0 * std::f64::consts::PI * 4.0 * 0.44 * 0.44
            + (2.0 * std::f64::consts::PI).powf(1.5) * 0.44f64.powi(3) * (-7.336103);
        assert!((a - expect).abs() < 1e-10);
    }

    #[test]
    fn si8_total_energy_sane() {
        let s = silicon_supercell(1);
        let grid = Grid::new(s.cell, [12, 12, 12]);
        let gs = quick_gs(&grid, &s);
        let e = total_energy(&grid, &s, &gs);
        assert!(e.total().is_finite());
        // bound crystal: strongly negative total energy
        assert!(e.total() < 0.0, "total {}", e.total());
        assert!(e.hartree > 0.0);
        assert!(e.exc < 0.0);
        assert!(e.ewald < 0.0);
    }

    #[test]
    fn total_energy_translation_invariant() {
        // Shift all atoms by one grid spacing: every term must be unchanged.
        let s1 = silicon_supercell(1);
        let shift = s1.cell.lengths[0] / 12.0;
        let s2 = Structure {
            cell: s1.cell,
            atoms: s1
                .atoms
                .iter()
                .map(|a| Atom {
                    species: a.species,
                    pos: [
                        (a.pos[0] + shift).rem_euclid(s1.cell.lengths[0]),
                        a.pos[1],
                        a.pos[2],
                    ],
                })
                .collect(),
        };
        let grid = Grid::new(s1.cell, [12, 12, 12]);
        let e1 = total_energy(&grid, &s1, &quick_gs(&grid, &s1));
        let e2 = total_energy(&grid, &s2, &quick_gs(&grid, &s2));
        let rel = (e1.total() - e2.total()).abs() / e1.total().abs();
        assert!(rel < 1e-3, "{} vs {} (rel {rel})", e1.total(), e2.total());
    }

    #[test]
    fn energy_per_atom_roughly_extensive() {
        // Si8 in one conventional cell vs the same cell density in a doubled
        // box is beyond our test budget; instead verify the ion term is
        // extensive and the breakdown totals are consistent.
        let s = silicon_supercell(1);
        let grid = Grid::new(s.cell, [12, 12, 12]);
        let gs = quick_gs(&grid, &s);
        let e = total_energy(&grid, &s, &gs);
        let recomputed = e.band - e.hartree - e.vxc_int + e.exc + e.ewald + e.g0;
        assert!((recomputed - e.total()).abs() < 1e-12);
    }

    #[test]
    fn hydrogen_like_atom_in_box() {
        // A single H pseudo-atom in a box: 1 electron, total energy near the
        // pseudo-atom scale (−0.4..−0.5 Ha region for GTH-H with LDA), and
        // definitely bound.
        let cell = Cell::cubic(10.0);
        let s = Structure {
            cell,
            atoms: vec![Atom { species: Species::H, pos: [5.0, 5.0, 5.0] }],
        };
        // Odd electron count → treat as closed-shell 2-electron H⁻-like test
        // would be wrong; instead just verify the machinery rejects it.
        let result = std::panic::catch_unwind(|| s.n_valence());
        assert!(result.is_err(), "odd electron count must be rejected");
    }
}
