//! The Kohn–Sham Hamiltonian `H = −½∇² + V_eff(r)` applied via FFT.
//!
//! Kinetic energy is diagonal in reciprocal space (`½|G|²`), the effective
//! potential diagonal in real space — the same dual-space structure the
//! LR-TDDFT kernel application reuses (paper §5.2: "apply the Hartree
//! operator, which is diagonal in reciprocal space, and then apply the
//! exchange-correlation operator, which is diagonal in real space").

use crate::cell::Grid;
use fftkit::Complex;
use mathkit::Mat;
use rayon::prelude::*;

/// Kohn–Sham operator bound to a grid and an effective potential.
pub struct KsHamiltonian<'g> {
    grid: &'g Grid,
    /// Local effective potential `V_ion + V_H + V_xc` on the grid.
    pub v_eff: Vec<f64>,
}

impl<'g> KsHamiltonian<'g> {
    pub fn new(grid: &'g Grid, v_eff: Vec<f64>) -> Self {
        assert_eq!(v_eff.len(), grid.len());
        KsHamiltonian { grid, v_eff }
    }

    /// Apply `H` to a block of wavefunction columns (`N_r × N_b`).
    pub fn apply(&self, psi: &Mat) -> Mat {
        let mut out = Mat::zeros(psi.nrows(), psi.ncols());
        self.apply_into(psi, &mut out);
        out
    }

    /// [`KsHamiltonian::apply`] writing into a caller-owned `out`.
    ///
    /// Columns go through parallel column views of `out`; the FFT workspace
    /// is one complex scratch buffer per Rayon worker (`for_each_init`), not
    /// a fresh allocation per column.
    pub fn apply_into(&self, psi: &Mat, out: &mut Mat) {
        let nr = self.grid.len();
        assert_eq!(psi.nrows(), nr);
        assert_eq!(out.shape(), psi.shape(), "apply_into shape mismatch");
        let plan = self.grid.plan();
        let g2 = self.grid.g2();
        let v = &self.v_eff;
        out.par_cols_mut().enumerate().for_each_init(
            || Vec::<Complex>::with_capacity(nr),
            |spec, (j, out_col)| {
                let col = psi.col(j);
                // Kinetic: FFT → ½|G|² → inverse FFT.
                spec.clear();
                spec.extend(col.iter().map(|&x| Complex::from_re(x)));
                plan.forward(spec);
                for (z, &gg) in spec.iter_mut().zip(g2.iter()) {
                    *z = z.scale(0.5 * gg);
                }
                plan.inverse(spec);
                // Plus local potential.
                for (((o, t), &x), &vr) in
                    out_col.iter_mut().zip(spec.iter()).zip(col.iter()).zip(v.iter())
                {
                    *o = t.re + vr * x;
                }
            },
        );
    }

    /// Diagonal kinetic preconditioner in reciprocal space:
    /// `w(G) = r(G) / (1 + |G|²)` — damps high-frequency error components.
    pub fn precondition(&self, r: &Mat) -> Mat {
        let plan = self.grid.plan();
        let g2 = self.grid.g2();
        let mut out = Mat::zeros(r.nrows(), r.ncols());
        out.par_cols_mut().enumerate().for_each_init(
            || Vec::<Complex>::with_capacity(self.grid.len()),
            |spec, (j, out_col)| {
                spec.clear();
                spec.extend(r.col(j).iter().map(|&x| Complex::from_re(x)));
                plan.forward(spec);
                for (z, &gg) in spec.iter_mut().zip(g2.iter()) {
                    *z = z.scale(1.0 / (1.0 + gg));
                }
                plan.inverse(spec);
                for (o, z) in out_col.iter_mut().zip(spec.iter()) {
                    *o = z.re;
                }
            },
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use mathkit::gemm_tn;

    #[test]
    fn free_particle_plane_wave_eigenstate() {
        // With V = 0, ψ(r) = cos(G₁ x) is an eigenstate with ε = ½|G₁|².
        let l = 8.0;
        let grid = Grid::new(Cell::cubic(l), [8, 8, 8]);
        let h = KsHamiltonian::new(&grid, vec![0.0; grid.len()]);
        let g1 = 2.0 * std::f64::consts::PI / l;
        let mut psi = Mat::zeros(grid.len(), 1);
        for i in 0..grid.len() {
            let r = grid.coords(i);
            psi[(i, 0)] = (g1 * r[0]).cos();
        }
        let hpsi = h.apply(&psi);
        let expect = 0.5 * g1 * g1;
        for i in 0..grid.len() {
            assert!(
                (hpsi[(i, 0)] - expect * psi[(i, 0)]).abs() < 1e-10,
                "not an eigenstate at {i}"
            );
        }
    }

    #[test]
    fn constant_potential_shifts_spectrum() {
        let grid = Grid::new(Cell::cubic(6.0), [8, 8, 8]);
        let h0 = KsHamiltonian::new(&grid, vec![0.0; grid.len()]);
        let h1 = KsHamiltonian::new(&grid, vec![0.3; grid.len()]);
        let mut psi = Mat::zeros(grid.len(), 1);
        for i in 0..grid.len() {
            psi[(i, 0)] = ((i % 7) as f64 - 3.0) * 0.1;
        }
        let a = h0.apply(&psi);
        let b = h1.apply(&psi);
        for i in 0..grid.len() {
            assert!((b[(i, 0)] - a[(i, 0)] - 0.3 * psi[(i, 0)]).abs() < 1e-11);
        }
    }

    #[test]
    fn hamiltonian_is_symmetric() {
        // ⟨φ|Hψ⟩ = ⟨Hφ|ψ⟩ for random fields and potential.
        let grid = Grid::new(Cell::cubic(5.0), [4, 4, 4]);
        let v: Vec<f64> = (0..grid.len()).map(|i| ((i * 13 % 7) as f64) * 0.1 - 0.3).collect();
        let h = KsHamiltonian::new(&grid, v);
        let mut rng = rand::thread_rng();
        let block = Mat::random(grid.len(), 3, &mut rng);
        let hb = h.apply(&block);
        let m1 = gemm_tn(&block, &hb);
        let m2 = m1.transpose();
        assert!(m1.max_abs_diff(&m2) < 1e-9);
    }

    #[test]
    fn preconditioner_damps_high_frequencies() {
        let l = 2.0 * std::f64::consts::PI;
        let grid = Grid::new(Cell::cubic(l), [16, 16, 16]);
        let h = KsHamiltonian::new(&grid, vec![0.0; grid.len()]);
        // low-frequency and high-frequency inputs
        let mut low = Mat::zeros(grid.len(), 1);
        let mut high = Mat::zeros(grid.len(), 1);
        for i in 0..grid.len() {
            let r = grid.coords(i);
            low[(i, 0)] = (1.0 * r[0]).cos();
            high[(i, 0)] = (7.0 * r[0]).cos();
        }
        let pl = h.precondition(&low);
        let ph = h.precondition(&high);
        let gain_low = pl.norm_fro() / low.norm_fro();
        let gain_high = ph.norm_fro() / high.norm_fro();
        assert!(gain_low > 0.4);
        assert!(gain_high < 0.05, "high-G gain {gain_high}");
    }
}
