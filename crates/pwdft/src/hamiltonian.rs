//! The Kohn–Sham Hamiltonian `H = −½∇² + V_eff(r)` applied via FFT.
//!
//! Kinetic energy is diagonal in reciprocal space (`½|G|²`), the effective
//! potential diagonal in real space — the same dual-space structure the
//! LR-TDDFT kernel application reuses (paper §5.2: "apply the Hartree
//! operator, which is diagonal in reciprocal space, and then apply the
//! exchange-correlation operator, which is diagonal in real space").

use crate::cell::Grid;
use mathkit::Mat;

/// Kohn–Sham operator bound to a grid and an effective potential.
pub struct KsHamiltonian<'g> {
    grid: &'g Grid,
    /// Local effective potential `V_ion + V_H + V_xc` on the grid.
    pub v_eff: Vec<f64>,
    /// Kinetic coefficients `½|G|²` (even in G → −G, so the two-for-one
    /// real-transform path applies).
    half_g2: Vec<f64>,
    /// Preconditioner coefficients `1/(1 + |G|²)`.
    precond_g: Vec<f64>,
}

impl<'g> KsHamiltonian<'g> {
    pub fn new(grid: &'g Grid, v_eff: Vec<f64>) -> Self {
        assert_eq!(v_eff.len(), grid.len());
        let half_g2 = grid.g2().iter().map(|&g| 0.5 * g).collect();
        let precond_g = grid.g2().iter().map(|&g| 1.0 / (1.0 + g)).collect();
        KsHamiltonian { grid, v_eff, half_g2, precond_g }
    }

    /// Apply `H` to a block of wavefunction columns (`N_r × N_b`).
    pub fn apply(&self, psi: &Mat) -> Mat {
        let mut out = Mat::zeros(psi.nrows(), psi.ncols());
        self.apply_into(psi, &mut out);
        out
    }

    /// [`KsHamiltonian::apply`] writing into a caller-owned `out`.
    ///
    /// The kinetic term `−½∇²` is a diagonal reciprocal-space kernel on real
    /// wavefunction columns, so it runs through the FFT engine's two-for-one
    /// batch path: pairs of columns share one complex transform each way,
    /// halving the 3-D FFT count of every Hamiltonian application.
    pub fn apply_into(&self, psi: &Mat, out: &mut Mat) {
        let nr = self.grid.len();
        assert_eq!(psi.nrows(), nr);
        assert_eq!(out.shape(), psi.shape(), "apply_into shape mismatch");
        let plan = self.grid.plan();
        plan.apply_real_diagonal_batch(&self.half_g2, psi.as_slice(), out.as_mut_slice(), false);
        let v = &self.v_eff;
        out.par_cols_mut().enumerate().for_each(|(j, out_col)| {
            // `out += V_eff ∘ ψ`: elementwise multiply-add through the
            // dispatched SIMD kernel (bitwise identical to the scalar loop).
            mathkit::simd::pointwise_muladd(out_col, v.as_slice(), psi.col(j));
        });
    }

    /// Diagonal kinetic preconditioner in reciprocal space:
    /// `w(G) = r(G) / (1 + |G|²)` — damps high-frequency error components.
    /// Also a real, even diagonal kernel → two-for-one batch path.
    pub fn precondition(&self, r: &Mat) -> Mat {
        let mut out = Mat::zeros(r.nrows(), r.ncols());
        self.grid.plan().apply_real_diagonal_batch(
            &self.precond_g,
            r.as_slice(),
            out.as_mut_slice(),
            false,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use mathkit::gemm_tn;

    #[test]
    fn free_particle_plane_wave_eigenstate() {
        // With V = 0, ψ(r) = cos(G₁ x) is an eigenstate with ε = ½|G₁|².
        let l = 8.0;
        let grid = Grid::new(Cell::cubic(l), [8, 8, 8]);
        let h = KsHamiltonian::new(&grid, vec![0.0; grid.len()]);
        let g1 = 2.0 * std::f64::consts::PI / l;
        let mut psi = Mat::zeros(grid.len(), 1);
        for i in 0..grid.len() {
            let r = grid.coords(i);
            psi[(i, 0)] = (g1 * r[0]).cos();
        }
        let hpsi = h.apply(&psi);
        let expect = 0.5 * g1 * g1;
        for i in 0..grid.len() {
            assert!(
                (hpsi[(i, 0)] - expect * psi[(i, 0)]).abs() < 1e-10,
                "not an eigenstate at {i}"
            );
        }
    }

    #[test]
    fn constant_potential_shifts_spectrum() {
        let grid = Grid::new(Cell::cubic(6.0), [8, 8, 8]);
        let h0 = KsHamiltonian::new(&grid, vec![0.0; grid.len()]);
        let h1 = KsHamiltonian::new(&grid, vec![0.3; grid.len()]);
        let mut psi = Mat::zeros(grid.len(), 1);
        for i in 0..grid.len() {
            psi[(i, 0)] = ((i % 7) as f64 - 3.0) * 0.1;
        }
        let a = h0.apply(&psi);
        let b = h1.apply(&psi);
        for i in 0..grid.len() {
            assert!((b[(i, 0)] - a[(i, 0)] - 0.3 * psi[(i, 0)]).abs() < 1e-11);
        }
    }

    #[test]
    fn hamiltonian_is_symmetric() {
        // ⟨φ|Hψ⟩ = ⟨Hφ|ψ⟩ for random fields and potential.
        let grid = Grid::new(Cell::cubic(5.0), [4, 4, 4]);
        let v: Vec<f64> = (0..grid.len()).map(|i| ((i * 13 % 7) as f64) * 0.1 - 0.3).collect();
        let h = KsHamiltonian::new(&grid, v);
        let mut rng = rand::thread_rng();
        let block = Mat::random(grid.len(), 3, &mut rng);
        let hb = h.apply(&block);
        let m1 = gemm_tn(&block, &hb);
        let m2 = m1.transpose();
        assert!(m1.max_abs_diff(&m2) < 1e-9);
    }

    #[test]
    fn preconditioner_damps_high_frequencies() {
        let l = 2.0 * std::f64::consts::PI;
        let grid = Grid::new(Cell::cubic(l), [16, 16, 16]);
        let h = KsHamiltonian::new(&grid, vec![0.0; grid.len()]);
        // low-frequency and high-frequency inputs
        let mut low = Mat::zeros(grid.len(), 1);
        let mut high = Mat::zeros(grid.len(), 1);
        for i in 0..grid.len() {
            let r = grid.coords(i);
            low[(i, 0)] = (1.0 * r[0]).cos();
            high[(i, 0)] = (7.0 * r[0]).cos();
        }
        let pl = h.precondition(&low);
        let ph = h.precondition(&high);
        let gain_low = pl.norm_fro() / low.norm_fro();
        let gain_high = ph.norm_fro() / high.norm_fro();
        assert!(gain_low > 0.4);
        assert!(gain_high < 0.05, "high-G gain {gain_high}");
    }
}
