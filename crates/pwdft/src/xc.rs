//! LDA exchange-correlation: Slater exchange + Perdew–Zunger (1981)
//! correlation, spin-unpolarized.
//!
//! Besides `ε_xc` and `V_xc` for the ground state, LR-TDDFT needs the kernel
//! `f_xc(r) = ∂V_xc/∂n` evaluated at the ground-state density (paper Eq. 4).
//! `V_xc` is analytic; `f_xc` is obtained by differentiating the analytic
//! `V_xc` with a high-order central difference, verified in tests against
//! second differences of the energy density.

/// Floor density to keep `n^{-2/3}` finite on vacuum regions of the grid.
pub const N_FLOOR: f64 = 1e-12;

/// Per-particle exchange energy `ε_x(n)` (Hartree).
#[inline]
pub fn ex_lda(n: f64) -> f64 {
    let n = n.max(N_FLOOR);
    -0.75 * (3.0 / std::f64::consts::PI).powf(1.0 / 3.0) * n.powf(1.0 / 3.0)
}

/// Exchange potential `v_x = d(n ε_x)/dn`.
#[inline]
pub fn vx_lda(n: f64) -> f64 {
    let n = n.max(N_FLOOR);
    -(3.0 / std::f64::consts::PI).powf(1.0 / 3.0) * n.powf(1.0 / 3.0)
}

/// Wigner–Seitz radius from density.
#[inline]
fn rs_of(n: f64) -> f64 {
    (3.0 / (4.0 * std::f64::consts::PI * n.max(N_FLOOR))).powf(1.0 / 3.0)
}

// Perdew–Zunger parameters (unpolarized).
const PZ_GAMMA: f64 = -0.1423;
const PZ_BETA1: f64 = 1.0529;
const PZ_BETA2: f64 = 0.3334;
const PZ_A: f64 = 0.0311;
const PZ_B: f64 = -0.048;
const PZ_C: f64 = 0.0020;
const PZ_D: f64 = -0.0116;

/// Per-particle correlation energy `ε_c(n)`.
pub fn ec_lda(n: f64) -> f64 {
    let rs = rs_of(n);
    if rs >= 1.0 {
        PZ_GAMMA / (1.0 + PZ_BETA1 * rs.sqrt() + PZ_BETA2 * rs)
    } else {
        PZ_A * rs.ln() + PZ_B + PZ_C * rs * rs.ln() + PZ_D * rs
    }
}

/// Correlation potential `v_c = d(n ε_c)/dn`.
pub fn vc_lda(n: f64) -> f64 {
    let rs = rs_of(n);
    if rs >= 1.0 {
        let x = rs.sqrt();
        let den = 1.0 + PZ_BETA1 * x + PZ_BETA2 * rs;
        let ec = PZ_GAMMA / den;
        ec * (1.0 + 7.0 / 6.0 * PZ_BETA1 * x + 4.0 / 3.0 * PZ_BETA2 * rs) / den
    } else {
        PZ_A * rs.ln() + (PZ_B - PZ_A / 3.0)
            + 2.0 / 3.0 * PZ_C * rs * rs.ln()
            + (2.0 * PZ_D - PZ_C) / 3.0 * rs
    }
}

/// Total XC potential `V_xc(n)`.
#[inline]
pub fn vxc_lda(n: f64) -> f64 {
    vx_lda(n) + vc_lda(n)
}

/// Per-particle XC energy `ε_xc(n)`.
#[inline]
pub fn exc_lda(n: f64) -> f64 {
    ex_lda(n) + ec_lda(n)
}

/// XC kernel `f_xc(n) = ∂V_xc/∂n`, by 4th-order central difference of the
/// analytic `V_xc` with a relative step (exact to ~1e-10 in practice).
pub fn fxc_lda(n: f64) -> f64 {
    let n = n.max(N_FLOOR);
    let h = 1e-4 * n;
    let f = |x: f64| vxc_lda(x);
    (-f(n + 2.0 * h) + 8.0 * f(n + h) - 8.0 * f(n - h) + f(n - 2.0 * h)) / (12.0 * h)
}

/// Bundle of grid-evaluated XC quantities for a density.
pub struct XcLda {
    pub exc: Vec<f64>,
    pub vxc: Vec<f64>,
    pub fxc: Vec<f64>,
}

impl XcLda {
    /// Evaluate on every grid point of `density`.
    pub fn evaluate(density: &[f64]) -> Self {
        let exc = density.iter().map(|&n| exc_lda(n)).collect();
        let vxc = density.iter().map(|&n| vxc_lda(n)).collect();
        let fxc = density.iter().map(|&n| fxc_lda(n)).collect();
        XcLda { exc, vxc, fxc }
    }

    /// XC energy `∫ n ε_xc dr`.
    pub fn energy(&self, density: &[f64], dv: f64) -> f64 {
        dv * density.iter().zip(&self.exc).map(|(n, e)| n * e).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central difference of an analytic scalar function.
    fn num_deriv(f: impl Fn(f64) -> f64, x: f64) -> f64 {
        let h = 1e-6 * x;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn vx_is_derivative_of_nex() {
        for &n in &[1e-3, 0.01, 0.1, 1.0, 10.0] {
            let analytic = vx_lda(n);
            let numeric = num_deriv(|x| x * ex_lda(x), n);
            assert!((analytic - numeric).abs() < 1e-6 * analytic.abs().max(1.0), "n={n}");
        }
    }

    #[test]
    fn vc_is_derivative_of_nec_both_branches() {
        // rs < 1 corresponds to n > 3/(4π) ≈ 0.2387; rs > 1 below.
        for &n in &[1e-3, 0.05, 0.2, 0.3, 1.0, 5.0] {
            let analytic = vc_lda(n);
            let numeric = num_deriv(|x| x * ec_lda(x), n);
            assert!(
                (analytic - numeric).abs() < 1e-5 * analytic.abs().max(1e-2),
                "n={n}: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn fxc_is_second_derivative_of_energy_density() {
        for &n in &[0.01, 0.1, 0.5, 2.0] {
            let analytic = fxc_lda(n);
            // d²(n·εxc)/dn² by second difference
            let h = 1e-4 * n;
            let e = |x: f64| x * exc_lda(x);
            let numeric = (e(n + h) - 2.0 * e(n) + e(n - h)) / (h * h);
            assert!(
                (analytic - numeric).abs() < 1e-4 * analytic.abs().max(1e-2),
                "n={n}: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn exchange_scaling_law() {
        // ε_x ∝ n^{1/3}
        let r = ex_lda(8.0) / ex_lda(1.0);
        assert!((r - 2.0).abs() < 1e-12);
    }

    #[test]
    fn known_reference_values() {
        // rs = 1 uses the low-density branch: εc = γ/(1+β₁+β₂) ≈ -0.059632,
        // and the high-density branch would give B + D = -0.0596 — the PZ
        // parametrization is continuous at rs = 1 by construction.
        let n_rs1 = 3.0 / (4.0 * std::f64::consts::PI);
        let ec = ec_lda(n_rs1);
        let low_branch = PZ_GAMMA / (1.0 + PZ_BETA1 + PZ_BETA2);
        assert!((ec - low_branch).abs() < 1e-12);
        assert!((ec - (PZ_B + PZ_D)).abs() < 2e-3, "branch mismatch at rs=1: {ec}");
        // Slater exchange at n = 1: -0.75*(3/π)^{1/3} ≈ -0.738559
        assert!((ex_lda(1.0) + 0.738_558_766).abs() < 1e-6);
    }

    #[test]
    fn potentials_negative_and_monotone() {
        let mut prev = 0.0;
        for i in 1..=20 {
            let n = i as f64 * 0.05;
            let v = vxc_lda(n);
            assert!(v < 0.0);
            assert!(v < prev, "V_xc must decrease with density");
            prev = v;
        }
    }

    #[test]
    fn fxc_negative_at_physical_densities() {
        for &n in &[0.001, 0.01, 0.1, 1.0] {
            assert!(fxc_lda(n) < 0.0, "f_xc({n}) should be attractive");
        }
    }

    #[test]
    fn vacuum_floor_is_finite() {
        assert!(vxc_lda(0.0).is_finite());
        assert!(fxc_lda(0.0).is_finite());
        assert!(exc_lda(-1.0).is_finite()); // negative density clamped
    }

    #[test]
    fn bundle_consistency() {
        let density = vec![0.01, 0.2, 1.5];
        let xc = XcLda::evaluate(&density);
        assert_eq!(xc.vxc.len(), 3);
        for (i, &n) in density.iter().enumerate() {
            assert_eq!(xc.vxc[i], vxc_lda(n));
            assert_eq!(xc.fxc[i], fxc_lda(n));
        }
        let e = xc.energy(&density, 0.1);
        let manual: f64 = density.iter().map(|&n| 0.1 * n * exc_lda(n)).sum();
        assert!((e - manual).abs() < 1e-14);
    }
}
