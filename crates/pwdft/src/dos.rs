//! Gaussian-broadened density of states (paper Fig. 9).

/// Evaluate `DOS(E) = Σ_i w_i · g(E − ε_i)` with Gaussian broadening `sigma`
/// on `npts` energies spanning `[emin, emax]`. Returns `(energy, dos)` pairs.
pub fn gaussian_dos(
    energies: &[f64],
    weights: Option<&[f64]>,
    sigma: f64,
    emin: f64,
    emax: f64,
    npts: usize,
) -> Vec<(f64, f64)> {
    assert!(sigma > 0.0 && npts >= 2 && emax > emin);
    if let Some(w) = weights {
        assert_eq!(w.len(), energies.len());
    }
    let norm = 1.0 / (sigma * (2.0 * std::f64::consts::PI).sqrt());
    (0..npts)
        .map(|k| {
            let e = emin + (emax - emin) * k as f64 / (npts - 1) as f64;
            let mut d = 0.0;
            for (i, &ei) in energies.iter().enumerate() {
                let x = (e - ei) / sigma;
                let w = weights.map_or(1.0, |w| w[i]);
                d += w * norm * (-0.5 * x * x).exp();
            }
            (e, d)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_level_peak_at_energy() {
        let dos = gaussian_dos(&[1.0], None, 0.1, 0.0, 2.0, 201);
        let (epeak, dmax) = dos
            .iter()
            .cloned()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!((epeak - 1.0).abs() < 0.011);
        // peak height of a unit Gaussian
        assert!((dmax - 1.0 / (0.1 * (2.0 * std::f64::consts::PI).sqrt())).abs() < 1e-3);
    }

    #[test]
    fn integrates_to_state_count() {
        let energies = [0.2, 0.5, 0.8];
        let dos = gaussian_dos(&energies, None, 0.05, -1.0, 2.0, 3001);
        let de = 3.0 / 3000.0;
        let integral: f64 = dos.iter().map(|(_, d)| d * de).sum();
        assert!((integral - 3.0).abs() < 1e-3, "integral {integral}");
    }

    #[test]
    fn weights_scale_contributions() {
        let a = gaussian_dos(&[0.0], Some(&[2.0]), 0.1, -1.0, 1.0, 101);
        let b = gaussian_dos(&[0.0], None, 0.1, -1.0, 1.0, 101);
        for ((_, da), (_, db)) in a.iter().zip(b.iter()) {
            assert!((da - 2.0 * db).abs() < 1e-12);
        }
    }
}
