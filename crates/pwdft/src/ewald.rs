//! Ewald summation: ion–ion electrostatic energy of the periodic cell.
//!
//! Needed for total energies (any production plane-wave code reports them).
//! Standard split into real-space, reciprocal-space, self, and
//! charged-background terms with splitting parameter `η`:
//!
//! ```text
//! E = ½ Σ'_{ijR} q_i q_j erfc(η r)/r
//!   + (2π/Ω) Σ_{G≠0} e^{−G²/4η²}/G² |S(G)|²
//!   − η/√π Σ q_i²  −  π (Σq_i)² / (2η²Ω)
//! ```

use crate::cell::Cell;
use crate::structures::Structure;

/// Complementary error function (Abramowitz & Stegun 7.1.26 rational
/// approximation, |ε| ≤ 1.5·10⁻⁷ — ample for meV-scale energy tests).
pub fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let val = poly * (-x * x).exp();
    if sign_negative {
        2.0 - val
    } else {
        val
    }
}

/// Error function via [`erfc`].
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Ewald energy of point charges `q` at positions `pos` in `cell`.
/// `eta` is the splitting parameter; any value in ~[0.2, 1.5]·(π/V^{1/3})
/// converges with the default cutoffs (the result is η-independent, which
/// the tests verify).
pub fn ewald_energy(cell: &Cell, pos: &[[f64; 3]], q: &[f64], eta: f64) -> f64 {
    assert_eq!(pos.len(), q.len());
    assert!(eta > 0.0);
    let n = pos.len();
    let omega = cell.volume();
    let (lx, ly, lz) = (cell.lengths[0], cell.lengths[1], cell.lengths[2]);

    // Real-space: include images until erfc cuts off (r_max ~ 5.6/η covers
    // erfc(5.6) ≈ 2e-15).
    let r_cut = 5.6 / eta;
    let nx = (r_cut / lx).ceil() as i64;
    let ny = (r_cut / ly).ceil() as i64;
    let nz = (r_cut / lz).ceil() as i64;
    let mut e_real = 0.0;
    for i in 0..n {
        for j in 0..n {
            for cx in -nx..=nx {
                for cy in -ny..=ny {
                    for cz in -nz..=nz {
                        if i == j && cx == 0 && cy == 0 && cz == 0 {
                            continue;
                        }
                        let dx = pos[j][0] - pos[i][0] + cx as f64 * lx;
                        let dy = pos[j][1] - pos[i][1] + cy as f64 * ly;
                        let dz = pos[j][2] - pos[i][2] + cz as f64 * lz;
                        let r = (dx * dx + dy * dy + dz * dz).sqrt();
                        if r < r_cut {
                            e_real += 0.5 * q[i] * q[j] * erfc(eta * r) / r;
                        }
                    }
                }
            }
        }
    }

    // Reciprocal-space: G-shells until the Gaussian cuts off
    // (g_max ~ 2η·√(−ln ε)).
    let g_max = 2.0 * eta * (34.5f64).sqrt(); // e^{-34.5} ≈ 1e-15
    let b = cell.recip();
    let mx = (g_max / b[0]).ceil() as i64;
    let my = (g_max / b[1]).ceil() as i64;
    let mz = (g_max / b[2]).ceil() as i64;
    let mut e_recip = 0.0;
    for gx in -mx..=mx {
        for gy in -my..=my {
            for gz in -mz..=mz {
                if gx == 0 && gy == 0 && gz == 0 {
                    continue;
                }
                let g = [gx as f64 * b[0], gy as f64 * b[1], gz as f64 * b[2]];
                let g2 = g[0] * g[0] + g[1] * g[1] + g[2] * g[2];
                if g2 > g_max * g_max {
                    continue;
                }
                let (mut s_re, mut s_im) = (0.0, 0.0);
                for (p, &qi) in pos.iter().zip(q.iter()) {
                    let phase = g[0] * p[0] + g[1] * p[1] + g[2] * p[2];
                    s_re += qi * phase.cos();
                    s_im += qi * phase.sin();
                }
                e_recip += (2.0 * std::f64::consts::PI / omega)
                    * (-g2 / (4.0 * eta * eta)).exp()
                    / g2
                    * (s_re * s_re + s_im * s_im);
            }
        }
    }

    // Self-interaction and neutralizing-background corrections.
    let q2: f64 = q.iter().map(|x| x * x).sum();
    let qt: f64 = q.iter().sum();
    let e_self = -eta / std::f64::consts::PI.sqrt() * q2;
    let e_bg = -std::f64::consts::PI * qt * qt / (2.0 * eta * eta * omega);

    e_real + e_recip + e_self + e_bg
}

/// Ion–ion energy of a [`Structure`] using the pseudo-charges `Z_ion`.
pub fn ion_ion_energy(structure: &Structure) -> f64 {
    let pos: Vec<[f64; 3]> = structure.atoms.iter().map(|a| a.pos).collect();
    let q: Vec<f64> = structure.atoms.iter().map(|a| a.species.z_ion()).collect();
    // Heuristic η that balances both sums for typical cells.
    let eta = 2.8 / structure.cell.volume().powf(1.0 / 3.0) * 1.2;
    ewald_energy(&structure.cell, &pos, &q, eta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structures::silicon_supercell;

    #[test]
    fn erfc_reference_values() {
        assert!((erf(1.0) - 0.842_700_792_9).abs() < 2e-7);
        assert!((erfc(2.0) - 0.004_677_734_98).abs() < 2e-7);
        assert!((erfc(0.0) - 1.0).abs() < 1e-6); // A&S 7.1.26 absolute error bound
        assert!((erfc(-1.0) - (2.0 - erfc(1.0))).abs() < 1e-12);
        assert!(erfc(6.0) < 1e-15);
    }

    #[test]
    fn eta_independence() {
        let cell = Cell::cubic(7.0);
        let pos = [[0.0, 0.0, 0.0], [3.1, 2.2, 1.3]];
        let q = [2.0, -1.0]; // deliberately non-neutral: background term matters
        let e1 = ewald_energy(&cell, &pos, &q, 0.4);
        let e2 = ewald_energy(&cell, &pos, &q, 0.7);
        let e3 = ewald_energy(&cell, &pos, &q, 1.1);
        assert!((e1 - e2).abs() < 1e-6, "{e1} vs {e2}");
        assert!((e2 - e3).abs() < 1e-6, "{e2} vs {e3}");
    }

    #[test]
    fn nacl_madelung_constant() {
        // Rock salt: ±1 charges on a cubic lattice, nearest-neighbour
        // distance d. E/ion = −M/d with Madelung constant M = 1.747565.
        let d = 1.0;
        let cell = Cell::cubic(2.0 * d);
        let mut pos = Vec::new();
        let mut q = Vec::new();
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    pos.push([i as f64 * d, j as f64 * d, k as f64 * d]);
                    q.push(if (i + j + k) % 2 == 0 { 1.0 } else { -1.0 });
                }
            }
        }
        let e = ewald_energy(&cell, &pos, &q, 1.2);
        // 8 ions = 4 ion pairs; the Madelung convention is energy per pair,
        // E_pair = −M/d.
        let per_pair = e / 4.0;
        let madelung = -per_pair * d;
        assert!(
            (madelung - 1.747_565).abs() < 1e-4,
            "Madelung constant {madelung}"
        );
    }

    #[test]
    fn wigner_limit_single_charge() {
        // One +1 charge in a cube with neutralizing background: the Ewald
        // energy is the Madelung energy of the Wigner crystal,
        // E = −2.837297/(2L) · q².
        let l = 3.0;
        let cell = Cell::cubic(l);
        let e = ewald_energy(&cell, &[[0.0, 0.0, 0.0]], &[1.0], 1.0);
        let expect = -2.837_297 / (2.0 * l);
        assert!((e - expect).abs() < 1e-4, "{e} vs {expect}");
    }

    #[test]
    fn translation_invariance() {
        let cell = Cell::new(6.0, 7.0, 8.0);
        let pos1 = [[1.0, 1.5, 2.0], [4.0, 3.0, 6.0]];
        let pos2 = [[2.3, 2.8, 3.1], [5.3, 4.3, 7.1]]; // same shift applied
        let q = [1.0, -1.0];
        let e1 = ewald_energy(&cell, &pos1, &q, 0.8);
        let e2 = ewald_energy(&cell, &pos2, &q, 0.8);
        assert!((e1 - e2).abs() < 1e-8);
    }

    #[test]
    fn silicon_ion_energy_negative_and_extensive() {
        let e1 = ion_ion_energy(&silicon_supercell(1));
        let e2 = ion_ion_energy(&silicon_supercell(2));
        assert!(e1 < 0.0, "cohesive ionic lattice energy should be negative: {e1}");
        // extensivity: 8× the atoms → ≈8× the energy
        let ratio = e2 / e1;
        assert!((ratio - 8.0).abs() < 0.05, "extensivity ratio {ratio}");
    }
}
