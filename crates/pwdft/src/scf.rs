//! Self-consistent field loop: the ground-state calculation whose orbitals
//! and energies feed LR-TDDFT.
//!
//! Flow per iteration: density → `V_H` (FFT Poisson) + `V_xc` (LDA) + ionic
//! local potential → LOBPCG for the lowest `N_v + N_c` bands (warm-started
//! from the previous iteration) → new density → linear mixing. Convergence
//! is measured by the integrated density change.

use crate::cell::Grid;
use crate::hamiltonian::KsHamiltonian;
use crate::pseudo::local_potential;
use crate::structures::Structure;
use crate::xc::{fxc_lda, vxc_lda};
use fftkit::PoissonSolver;
use mathkit::lobpcg::{lobpcg, LobpcgOptions};
use mathkit::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Density mixing scheme.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MixingScheme {
    /// Plain linear mixing `n ← (1−β)n + β n_out`.
    #[default]
    Linear,
    /// One-history Anderson acceleration: extrapolate along the residual
    /// difference before applying the `β` damping. Converges in fewer
    /// iterations on charge-sloshing-prone systems.
    Anderson,
}

/// Options for the SCF driver.
#[derive(Clone, Copy, Debug)]
pub struct ScfOptions {
    /// Number of conduction (virtual) bands to converge beyond `N_v`.
    pub n_conduction: usize,
    /// Max SCF iterations.
    pub max_iter: usize,
    /// Convergence threshold on `∫|n_out − n_in| dr / N_e`.
    pub density_tol: f64,
    /// Mixing fraction of the new density (`β`).
    pub mixing: f64,
    /// Mixing scheme.
    pub scheme: MixingScheme,
    /// LOBPCG settings for the band solve.
    pub band_tol: f64,
    pub band_max_iter: usize,
    /// RNG seed for the initial wavefunction guess (deterministic runs).
    pub seed: u64,
}

impl Default for ScfOptions {
    fn default() -> Self {
        ScfOptions {
            n_conduction: 4,
            max_iter: 60,
            density_tol: 1e-6,
            mixing: 0.4,
            scheme: MixingScheme::Linear,
            band_tol: 1e-7,
            band_max_iter: 80,
            seed: 0x5eed_1234,
        }
    }
}

/// Converged ground state: everything LR-TDDFT consumes.
pub struct GroundState {
    /// Kohn–Sham energies, ascending (`N_v + N_c` of them).
    pub eps: Vec<f64>,
    /// Orbitals on the grid (`N_r × (N_v+N_c)`), orthonormal w.r.t.
    /// `∫ψ_iψ_j dr = δ_ij` (i.e. `ΔV · Σ_r ψ_iψ_j = δ_ij`).
    pub psi: Mat,
    /// Ground-state electron density `n(r)`.
    pub density: Vec<f64>,
    /// Number of doubly-occupied valence orbitals.
    pub n_valence: usize,
    /// Number of conduction orbitals kept.
    pub n_conduction: usize,
    /// `f_xc(r)` evaluated at the converged density.
    pub fxc: Vec<f64>,
    /// Effective potential at convergence.
    pub v_eff: Vec<f64>,
    /// SCF iterations taken.
    pub iterations: usize,
    /// Final density residual.
    pub residual: f64,
    /// Whether `density_tol` was met.
    pub converged: bool,
}

impl GroundState {
    /// Valence orbital block `N_r × N_v`.
    pub fn psi_valence(&self) -> Mat {
        self.psi.col_block(0, self.n_valence)
    }

    /// Conduction orbital block `N_r × N_c`.
    pub fn psi_conduction(&self) -> Mat {
        self.psi.col_block(self.n_valence, self.n_valence + self.n_conduction)
    }

    /// Kohn–Sham gap `ε_{LUMO} − ε_{HOMO}`.
    pub fn gap(&self) -> f64 {
        self.eps[self.n_valence] - self.eps[self.n_valence - 1]
    }
}

/// Initial density: superposition of atomic Gaussians normalized to `N_e`.
fn initial_density(grid: &Grid, structure: &Structure) -> Vec<f64> {
    let alpha = 0.5; // Bohr⁻²: broad enough for coarse grids
    let mut n = vec![0.0; grid.len()];
    for atom in &structure.atoms {
        let z = atom.species.z_ion();
        for (i, ni) in n.iter_mut().enumerate() {
            let d = grid.cell.min_image(atom.pos, grid.coords(i));
            let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
            *ni += z * (alpha / std::f64::consts::PI).powf(1.5) * (-alpha * r2).exp();
        }
    }
    // Normalize exactly to the electron count.
    let ne = structure.n_electrons() as f64;
    let total: f64 = n.iter().sum::<f64>() * grid.dv();
    if total > 0.0 {
        let s = ne / total;
        for v in &mut n {
            *v *= s;
        }
    }
    n
}

/// Run the SCF loop for `structure` on `grid`.
pub fn scf(grid: &Grid, structure: &Structure, opts: ScfOptions) -> GroundState {
    let n_v = structure.n_valence();
    let n_bands = n_v + opts.n_conduction;
    assert!(
        n_bands <= grid.len(),
        "more bands ({n_bands}) than grid points ({})",
        grid.len()
    );
    let dv = grid.dv();
    let ne = structure.n_electrons() as f64;

    let v_ion = local_potential(grid, structure);
    let poisson = PoissonSolver::new(grid.plan(), grid.cell.lengths);
    let mut density = initial_density(grid, structure);
    // Hartree-potential buffer reused across iterations (the solver itself
    // reuses its per-worker FFT scratch).
    let mut v_h = vec![0.0; grid.len()];

    // Deterministic random initial orbitals.
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut x = Mat::from_fn(grid.len(), n_bands, |_, _| rng.gen_range(-1.0..1.0));

    let mut eps = vec![0.0; n_bands];
    let mut residual = f64::INFINITY;
    let mut iterations = 0;
    let mut converged = false;
    let mut v_eff = vec![0.0; grid.len()];
    // Anderson history: previous (n_in, F).
    let mut history: Option<(Vec<f64>, Vec<f64>)> = None;

    for it in 0..opts.max_iter {
        iterations = it + 1;
        // Effective potential from the current density.
        poisson.hartree_potential_into(&density, &mut v_h);
        for i in 0..grid.len() {
            v_eff[i] = v_ion[i] + v_h[i] + vxc_lda(density[i]);
        }
        let h = KsHamiltonian::new(grid, v_eff.clone());

        // Band solve, warm-started. A breakdown (poisoned arithmetic, lost
        // subspace) gets one clean retry from the same warm start — injected
        // faults are one-shot, so the retry sees pristine arithmetic; a
        // second failure is a genuine numerical problem and aborts the SCF
        // with the typed error.
        let band_opts = LobpcgOptions { max_iter: opts.band_max_iter, tol: opts.band_tol };
        let res = lobpcg(|b| h.apply(b), |r, _| h.precondition(r), &x, band_opts)
            .or_else(|first| {
                obskit::instant(
                    obskit::Stage::Other,
                    "scf.band_retry",
                    &[("iter", it as f64)],
                );
                lobpcg(|b| h.apply(b), |r, _| h.precondition(r), &x, band_opts)
                    .map_err(|_| first)
            })
            .unwrap_or_else(|e| panic!("scf: band solve failed twice at iteration {it}: {e}"));
        x = res.vectors;
        eps.copy_from_slice(&res.values);

        // New density from doubly-occupied valence bands. LOBPCG vectors are
        // unit-2-norm on the grid; grid-orthonormal orbitals carry 1/√ΔV.
        let accumulate_density = |x: &Mat| {
            let mut n_out = vec![0.0; grid.len()];
            for b in 0..n_v {
                let col = x.col(b);
                for (ni, &v) in n_out.iter_mut().zip(col.iter()) {
                    *ni += 2.0 * v * v / dv;
                }
            }
            n_out
        };
        let mut n_out = accumulate_density(&x);
        // Fault hook + finiteness guard: a corrupted density field is
        // recomputed from the (finite) orbitals rather than propagated into
        // the potentials of every later iteration.
        faultkit::inject_slice("scf.density", &mut n_out);
        if n_out.iter().any(|v| !v.is_finite()) {
            n_out = accumulate_density(&x);
        }
        // Last-good density for campaign-level restart (no-op unless armed).
        faultkit::checkpoint_save(
            "scf.density",
            faultkit::Checkpoint {
                iteration: it,
                rows: grid.len(),
                cols: 1,
                data: n_out.clone(),
            },
        );
        residual = n_out
            .iter()
            .zip(density.iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            * dv
            / ne;
        obskit::instant(
            obskit::Stage::Other,
            "scf.iter",
            &[("iter", it as f64), ("residual", residual)],
        );
        // Mix: F = n_out − n_in is the SCF residual field.
        let f: Vec<f64> = n_out.iter().zip(density.iter()).map(|(o, d)| o - d).collect();
        match opts.scheme {
            MixingScheme::Linear => {
                for (d, fi) in density.iter_mut().zip(f.iter()) {
                    *d += opts.mixing * fi;
                }
            }
            MixingScheme::Anderson => {
                if let Some((n_prev, f_prev)) = history.take() {
                    // θ minimizes ‖(1−θ)F_k + θF_{k−1}‖².
                    let mut num = 0.0;
                    let mut den = 0.0;
                    for (fk, fp) in f.iter().zip(f_prev.iter()) {
                        let df = fk - fp;
                        num += fk * df;
                        den += df * df;
                    }
                    let theta = if den > 0.0 { (num / den).clamp(-1.0, 2.0) } else { 0.0 };
                    let n_curr = density.clone();
                    for i in 0..density.len() {
                        let n_bar = (1.0 - theta) * n_curr[i] + theta * n_prev[i];
                        let f_bar = (1.0 - theta) * f[i] + theta * f_prev[i];
                        density[i] = (n_bar + opts.mixing * f_bar).max(0.0);
                    }
                    history = Some((n_curr, f.clone()));
                } else {
                    let n_curr = density.clone();
                    for (d, fi) in density.iter_mut().zip(f.iter()) {
                        *d += opts.mixing * fi;
                    }
                    history = Some((n_curr, f.clone()));
                }
            }
        }
        if residual < opts.density_tol {
            converged = true;
            break;
        }
    }

    // Final quantities at the mixed density.
    let fxc = density.iter().map(|&n| fxc_lda(n)).collect();
    // Grid-orthonormal orbitals.
    let scale = 1.0 / dv.sqrt();
    let mut psi = x;
    psi.scale(scale);

    GroundState {
        eps,
        psi,
        density,
        n_valence: n_v,
        n_conduction: opts.n_conduction,
        fxc,
        v_eff,
        iterations,
        residual,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structures::{silicon_supercell, water_in_box};
    use mathkit::syrk_tn_scaled;

    fn quick_opts() -> ScfOptions {
        ScfOptions {
            n_conduction: 3,
            max_iter: 15,
            density_tol: 1e-4,
            mixing: 0.5,
            band_tol: 1e-6,
            band_max_iter: 30,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn water_scf_mechanics() {
        // A 16³ grid cannot resolve oxygen's r_loc ≈ 0.25 Bohr, so we assert
        // the SCF *machinery* here (progress, normalization, orthonormality,
        // ordering); converged-accuracy checks run on finer grids in the
        // release-mode harness (paper Table 5 reproduction).
        let s = water_in_box(14.0);
        let grid = Grid::new(s.cell, [16, 16, 16]);
        let gs = scf(&grid, &s, quick_opts());
        assert!(gs.residual < 0.3, "density residual {}", gs.residual);
        assert_eq!(gs.n_valence, 4);
        // eigenvalues ascending
        for w in gs.eps.windows(2) {
            assert!(w[0] <= w[1] + 1e-9);
        }
        // orbitals grid-orthonormal
        // ΨᵀΨ is a symmetric Gram — packed rank-k engine with ΔV in alpha.
        let overlap = syrk_tn_scaled(grid.dv(), &gs.psi);
        assert!(overlap.max_abs_diff(&Mat::eye(gs.eps.len())) < 1e-5);
    }

    #[test]
    fn silicon_si8_scf_gap() {
        let s = silicon_supercell(1);
        let grid = Grid::for_cutoff(s.cell, 5.0);
        let mut opts = quick_opts();
        opts.n_conduction = 4;
        let gs = scf(&grid, &s, opts);
        assert_eq!(gs.n_valence, 16);
        assert_eq!(gs.eps.len(), 20);
        // eigenvalues ascending
        for w in gs.eps.windows(2) {
            assert!(w[0] <= w[1] + 1e-9);
        }
        // bulk silicon at Γ with a coarse grid still shows a positive gap
        assert!(gs.gap() > 0.0, "gap = {}", gs.gap());
        let ne: f64 = gs.density.iter().sum::<f64>() * grid.dv();
        assert!((ne - 32.0).abs() < 1e-5);
    }

    #[test]
    fn initial_density_normalized() {
        let s = silicon_supercell(1);
        let grid = Grid::new(s.cell, [12, 12, 12]);
        let n0 = initial_density(&grid, &s);
        let total: f64 = n0.iter().sum::<f64>() * grid.dv();
        assert!((total - 32.0).abs() < 1e-9);
        assert!(n0.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn anderson_mixing_converges_no_slower_than_linear() {
        let s = silicon_supercell(1);
        let grid = Grid::new(s.cell, [12, 12, 12]);
        let mut lin_opts = quick_opts();
        lin_opts.max_iter = 12;
        lin_opts.density_tol = 1e-4;
        lin_opts.band_max_iter = 20;
        let mut and_opts = lin_opts;
        and_opts.scheme = MixingScheme::Anderson;
        let lin = scf(&grid, &s, lin_opts);
        let and = scf(&grid, &s, and_opts);
        assert!(and.residual <= lin.residual * 2.0, "Anderson {} vs linear {}", and.residual, lin.residual);
        assert!(and.iterations <= lin.iterations + 2);
        // Partially-converged densities give noisy band energies, so no
        // per-band comparison here; the residual and iteration contracts
        // above are the meaningful ones at this iteration budget.
    }

    #[test]
    fn poisoned_density_heals_to_clean_result() {
        let s = water_in_box(12.0);
        let grid = Grid::new(s.cell, [12, 12, 12]);
        let mut opts = quick_opts();
        opts.max_iter = 5;
        let clean = scf(&grid, &s, opts);
        // Poison the density field on the second iteration: the finiteness
        // guard recomputes it from the orbitals, so the run stays bitwise
        // identical to the clean one.
        let campaign = faultkit::arm(
            faultkit::FaultPlan::new(13).with("scf.density", 1, faultkit::FaultKind::NanPoison),
        );
        let healed = scf(&grid, &s, opts);
        assert_eq!(campaign.fired(), 1);
        assert_eq!(clean.eps, healed.eps);
        assert_eq!(clean.density, healed.density);
    }

    #[test]
    fn scf_deterministic_given_seed() {
        let s = water_in_box(12.0);
        let grid = Grid::new(s.cell, [12, 12, 12]);
        let mut opts = quick_opts();
        opts.max_iter = 5; // determinism needs few iterations to show
        let a = scf(&grid, &s, opts);
        let b = scf(&grid, &s, opts);
        assert_eq!(a.eps, b.eps);
    }
}
