//! GTH/HGH-style local pseudopotentials.
//!
//! The paper applies Hartwigsen–Goedecker–Hutter norm-conserving
//! pseudopotentials. We implement the *local* part, which has an analytic
//! reciprocal-space form (Goedecker–Teter–Hutter 1996, Eq. 6):
//!
//! ```text
//! V_loc(G) = -4π Z_ion/(Ω G²) · exp(−½ G² r_loc²)
//!            + √(8π³) r_loc³/Ω · exp(−½ G² r_loc²) ·
//!              [ C₁ + C₂ (3 − G² r_loc²) ]
//! ```
//!
//! The nonlocal projectors are omitted — a documented substitution: the
//! LR-TDDFT pipeline consumes only the resulting orbitals/energies, and every
//! downstream kernel (ISDF, K-Means, LOBPCG, FFT Hartree) is agnostic to how
//! the ground-state potential was assembled.

use crate::cell::Grid;
use crate::structures::Structure;
use fftkit::Complex;

/// Chemical species with GTH-LDA local-part parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Species {
    H,
    C,
    O,
    Si,
}

impl Species {
    /// Valence charge `Z_ion` of the pseudo-atom.
    pub fn z_ion(&self) -> f64 {
        match self {
            Species::H => 1.0,
            Species::C => 4.0,
            Species::O => 6.0,
            Species::Si => 4.0,
        }
    }

    /// Local radius `r_loc` (Bohr).
    pub fn r_loc(&self) -> f64 {
        match self {
            Species::H => 0.20,
            Species::C => 0.348_830,
            Species::O => 0.247_621,
            Species::Si => 0.44,
        }
    }

    /// Gaussian polynomial coefficients `(C₁, C₂)` of the GTH local part.
    pub fn c_coeffs(&self) -> (f64, f64) {
        match self {
            Species::H => (-4.180_237, 0.725_075),
            Species::C => (-8.513_771, 1.228_432),
            Species::O => (-16.580_318, 2.395_701),
            Species::Si => (-7.336_103, 0.0),
        }
    }

    /// Symbol for reports.
    pub fn symbol(&self) -> &'static str {
        match self {
            Species::H => "H",
            Species::C => "C",
            Species::O => "O",
            Species::Si => "Si",
        }
    }
}

/// Reciprocal-space local pseudopotential of one species at `|G|² = g2`,
/// for cell volume `omega`. `g2 = 0` returns 0 (the divergent Coulomb `G=0`
/// term cancels against the compensating background, as in any neutral
/// plane-wave code).
pub fn vloc_g(species: Species, g2: f64, omega: f64) -> f64 {
    if g2 <= 0.0 {
        return 0.0;
    }
    let rl = species.r_loc();
    let (c1, c2) = species.c_coeffs();
    let z = species.z_ion();
    let x = g2 * rl * rl;
    let gauss = (-0.5 * x).exp();
    let coulomb = -4.0 * std::f64::consts::PI * z / (omega * g2) * gauss;
    let poly = (8.0 * std::f64::consts::PI.powi(3)).sqrt() * rl.powi(3) / omega
        * gauss
        * (c1 + c2 * (3.0 - x));
    coulomb + poly
}

/// Total local ionic potential of a structure on a real-space grid:
/// `V(r) = Σ_G Σ_a V_a(G) e^{-iG·τ_a} e^{iG·r}`, assembled with structure
/// factors in reciprocal space and inverse-FFT'd to the grid.
pub fn local_potential(grid: &Grid, structure: &Structure) -> Vec<f64> {
    let plan = grid.plan();
    let omega = grid.cell.volume();
    let (n1, n2, n3) = (grid.n[0], grid.n[1], grid.n[2]);
    let b = grid.cell.recip();
    let mut spec = vec![Complex::ZERO; plan.len()];
    // Group atoms by species so vloc_g is evaluated once per (species, G).
    for i3 in 0..n3 {
        let m3 = fftkit::poisson::signed_freq(i3, n3) as f64 * b[2];
        for i2 in 0..n2 {
            let m2 = fftkit::poisson::signed_freq(i2, n2) as f64 * b[1];
            for i1 in 0..n1 {
                let m1 = fftkit::poisson::signed_freq(i1, n1) as f64 * b[0];
                let g2 = m1 * m1 + m2 * m2 + m3 * m3;
                let idx = plan.idx(i1, i2, i3);
                let mut total = Complex::ZERO;
                for atom in &structure.atoms {
                    let v = vloc_g(atom.species, g2, omega);
                    if v == 0.0 {
                        continue;
                    }
                    let phase = -(m1 * atom.pos[0] + m2 * atom.pos[1] + m3 * atom.pos[2]);
                    total += Complex::cis(phase).scale(v);
                }
                spec[idx] = total;
            }
        }
    }
    // V(r) = Σ_G V(G) e^{iG·r}; our inverse FFT supplies e^{+i…}/N, so scale
    // by N to undo the 1/N normalization (V(G) coefficients are not DFT bins).
    let n_tot = plan.len() as f64;
    let mut v = spec;
    plan.inverse(&mut v);
    v.into_iter().map(|z| z.re * n_tot).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use crate::structures::{silicon_supercell, Atom};

    #[test]
    fn vloc_g_limits() {
        // Large G: everything decays to 0.
        let v = vloc_g(Species::Si, 1e4, 1000.0);
        assert!(v.abs() < 1e-12);
        // G=0 convention.
        assert_eq!(vloc_g(Species::Si, 0.0, 1000.0), 0.0);
        // Small-G behaviour is Coulombic (negative, large).
        let v = vloc_g(Species::Si, 1e-3, 1000.0);
        assert!(v < -1.0);
    }

    #[test]
    fn potential_is_real_and_periodic() {
        let s = silicon_supercell(1);
        let grid = Grid::new(s.cell, [8, 8, 8]);
        let v = local_potential(&grid, &s);
        assert_eq!(v.len(), 512);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn potential_attractive_at_nucleus() {
        // Single atom in a box: the potential minimum should sit at the atom.
        let cell = Cell::cubic(12.0);
        let s = Structure {
            cell,
            atoms: vec![Atom { species: Species::Si, pos: [6.0, 6.0, 6.0] }],
        };
        let grid = Grid::new(cell, [16, 16, 16]);
        let v = local_potential(&grid, &s);
        let (imin, _) = v
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let pos = grid.coords(imin);
        for c in 0..3 {
            assert!((pos[c] - 6.0).abs() < 12.0 / 16.0 + 1e-9, "minimum at {pos:?}");
        }
        // and it is negative (attractive)
        assert!(v[imin] < 0.0);
    }

    #[test]
    fn translation_covariance() {
        // Shifting the atom by one grid spacing shifts the potential.
        let cell = Cell::cubic(8.0);
        let grid = Grid::new(cell, [8, 8, 8]);
        let h = 1.0; // one grid spacing
        let s1 = Structure {
            cell,
            atoms: vec![Atom { species: Species::H, pos: [4.0, 4.0, 4.0] }],
        };
        let s2 = Structure {
            cell,
            atoms: vec![Atom { species: Species::H, pos: [4.0 + h, 4.0, 4.0] }],
        };
        let v1 = local_potential(&grid, &s1);
        let v2 = local_potential(&grid, &s2);
        for i1 in 0..8usize {
            let shifted = v2[grid.idx((i1 + 1) % 8, 3, 5)];
            let orig = v1[grid.idx(i1, 3, 5)];
            assert!((shifted - orig).abs() < 1e-9, "i1={i1}");
        }
    }

    #[test]
    fn superposition_of_atoms() {
        // V of two atoms = sum of single-atom potentials (linearity).
        let cell = Cell::cubic(10.0);
        let grid = Grid::new(cell, [8, 8, 8]);
        let a1 = Atom { species: Species::O, pos: [2.0, 5.0, 5.0] };
        let a2 = Atom { species: Species::H, pos: [7.0, 5.0, 5.0] };
        let v1 = local_potential(&grid, &Structure { cell, atoms: vec![a1] });
        let v2 = local_potential(&grid, &Structure { cell, atoms: vec![a2] });
        let v12 = local_potential(&grid, &Structure { cell, atoms: vec![a1, a2] });
        for i in 0..v12.len() {
            assert!((v12[i] - v1[i] - v2[i]).abs() < 1e-9);
        }
    }
}
