//! Test-system builders: the paper's physical systems at configurable scale.
//!
//! * `silicon_supercell(n)` — n×n×n conventional diamond cells → 8n³ atoms;
//!   n = 1..5 gives the paper's Si₈/Si₆₄/Si₂₁₆/Si₅₁₂/Si₁₀₀₀ ladder (the
//!   conventional cubic cell holds 8 atoms).
//! * `water_in_box(l)` — one H₂O molecule centred in a cubic box, the
//!   paper's Table 5 accuracy system.
//! * `bilayer_graphene(nx, ny, d)` — an orthorhombic AA'-stacked bilayer
//!   with a Moiré-period in-plane displacement modulation: the laptop-scale
//!   stand-in for the 1,180-atom MATBG application (Fig. 9). The physically
//!   relevant knob — interlayer distance `d` controlling interlayer
//!   hybridization — is preserved.

use crate::cell::Cell;
use crate::pseudo::Species;
use crate::ANGSTROM;

/// An atom: species + Cartesian position (Bohr).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Atom {
    pub species: Species,
    pub pos: [f64; 3],
}

/// A periodic structure: cell + atoms.
#[derive(Clone, Debug)]
pub struct Structure {
    pub cell: Cell,
    pub atoms: Vec<Atom>,
}

impl Structure {
    /// Total valence-electron count (what LDA sees through pseudopotentials).
    pub fn n_electrons(&self) -> usize {
        self.atoms.iter().map(|a| a.species.z_ion() as usize).sum()
    }

    /// Number of doubly-occupied valence orbitals (closed shell).
    pub fn n_valence(&self) -> usize {
        let ne = self.n_electrons();
        assert!(ne.is_multiple_of(2), "closed-shell systems only (even electron count)");
        ne / 2
    }
}

/// Conventional diamond-silicon lattice constant, Bohr (5.431 Å).
pub const SI_LATTICE: f64 = 5.431 * ANGSTROM;

/// n×n×n conventional diamond cells of silicon: 8·n³ atoms.
pub fn silicon_supercell(n: usize) -> Structure {
    assert!(n >= 1);
    let frac: [[f64; 3]; 8] = [
        [0.0, 0.0, 0.0],
        [0.0, 0.5, 0.5],
        [0.5, 0.0, 0.5],
        [0.5, 0.5, 0.0],
        [0.25, 0.25, 0.25],
        [0.25, 0.75, 0.75],
        [0.75, 0.25, 0.75],
        [0.75, 0.75, 0.25],
    ];
    let a = SI_LATTICE;
    let l = a * n as f64;
    let mut atoms = Vec::with_capacity(8 * n * n * n);
    for cx in 0..n {
        for cy in 0..n {
            for cz in 0..n {
                for f in frac {
                    atoms.push(Atom {
                        species: Species::Si,
                        pos: [
                            (cx as f64 + f[0]) * a,
                            (cy as f64 + f[1]) * a,
                            (cz as f64 + f[2]) * a,
                        ],
                    });
                }
            }
        }
    }
    Structure { cell: Cell::cubic(l), atoms }
}

/// One water molecule centred in a cubic box of side `l_bohr`
/// (the paper uses an 11 Å box: `l ≈ 20.8` Bohr).
pub fn water_in_box(l_bohr: f64) -> Structure {
    let c = l_bohr / 2.0;
    // Experimental geometry: r(OH) = 0.9572 Å, ∠HOH = 104.52°.
    let r = 0.9572 * ANGSTROM;
    let half = 104.52f64.to_radians() / 2.0;
    let atoms = vec![
        Atom { species: Species::O, pos: [c, c, c] },
        Atom {
            species: Species::H,
            pos: [c + r * half.sin(), c, c + r * half.cos()],
        },
        Atom {
            species: Species::H,
            pos: [c - r * half.sin(), c, c + r * half.cos()],
        },
    ];
    Structure { cell: Cell::cubic(l_bohr), atoms }
}

/// Graphene in-plane lattice constant, Bohr (2.46 Å).
pub const GRAPHENE_A: f64 = 2.46 * ANGSTROM;

/// Orthorhombic bilayer graphene: `nx × ny` rectangular 4-atom cells per
/// layer (8·nx·ny atoms total), interlayer distance `d_angstrom`, box height
/// `lz_bohr`. A sinusoidal in-plane shift with the supercell period emulates
/// the Moiré registry modulation of twisted bilayers.
pub fn bilayer_graphene(nx: usize, ny: usize, d_angstrom: f64, lz_bohr: f64) -> Structure {
    let a = GRAPHENE_A;
    let w = a; // rectangular cell width
    let h = a * 3.0f64.sqrt(); // rectangular cell height (armchair doubling)
    let lx = w * nx as f64;
    let ly = h * ny as f64;
    let d = d_angstrom * ANGSTROM;
    let z0 = lz_bohr / 2.0 - d / 2.0;
    let z1 = lz_bohr / 2.0 + d / 2.0;
    // 4-atom rectangular graphene basis (fractional in the w×h cell).
    let basis: [[f64; 2]; 4] = [
        [0.0, 0.0],
        [0.5, 1.0 / 6.0],
        [0.5, 0.5],
        [0.0, 2.0 / 3.0],
    ];
    let mut atoms = Vec::with_capacity(8 * nx * ny);
    let moire = |x: f64, y: f64| -> [f64; 2] {
        // Smooth registry modulation with supercell period: the second layer
        // slides by up to ~a/4, creating AA-like and AB-like regions, the
        // essential ingredient for Moiré-localized states.
        let tx = 2.0 * std::f64::consts::PI * x / lx;
        let ty = 2.0 * std::f64::consts::PI * y / ly;
        [0.25 * a * tx.sin(), 0.25 * a * ty.sin()]
    };
    for cx in 0..nx {
        for cy in 0..ny {
            for b in basis {
                let x = (cx as f64 + b[0]) * w;
                let y = (cy as f64 + b[1]) * h;
                atoms.push(Atom { species: Species::C, pos: [x, y, z0] });
                let m = moire(x, y);
                atoms.push(Atom {
                    species: Species::C,
                    pos: [(x + m[0]).rem_euclid(lx), (y + m[1]).rem_euclid(ly), z1],
                });
            }
        }
    }
    Structure { cell: Cell::new(lx, ly, lz_bohr), atoms }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silicon_counts_match_paper_ladder() {
        assert_eq!(silicon_supercell(1).atoms.len(), 8);
        assert_eq!(silicon_supercell(2).atoms.len(), 64);
        assert_eq!(silicon_supercell(3).atoms.len(), 216);
        assert_eq!(silicon_supercell(4).atoms.len(), 512);
        assert_eq!(silicon_supercell(5).atoms.len(), 1000);
    }

    #[test]
    fn silicon_electron_count() {
        // Si pseudo has Z_ion = 4 → Si8 has 32 electrons, 16 valence orbitals.
        let s = silicon_supercell(1);
        assert_eq!(s.n_electrons(), 32);
        assert_eq!(s.n_valence(), 16);
    }

    #[test]
    fn silicon_atoms_inside_cell() {
        let s = silicon_supercell(2);
        for a in &s.atoms {
            for c in 0..3 {
                assert!(a.pos[c] >= 0.0 && a.pos[c] < s.cell.lengths[c]);
            }
        }
    }

    #[test]
    fn silicon_nearest_neighbour_distance() {
        // Diamond nearest-neighbour distance = a√3/4.
        let s = silicon_supercell(1);
        let expect = SI_LATTICE * 3.0f64.sqrt() / 4.0;
        let d = s.cell.min_image(s.atoms[0].pos, s.atoms[4].pos);
        let dist = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        assert!((dist - expect).abs() < 1e-9);
    }

    #[test]
    fn water_geometry() {
        let s = water_in_box(20.8);
        assert_eq!(s.atoms.len(), 3);
        assert_eq!(s.n_electrons(), 8); // O:6 + 2×H:1
        let oh1 = s.cell.min_image(s.atoms[0].pos, s.atoms[1].pos);
        let r1 = (oh1.iter().map(|x| x * x).sum::<f64>()).sqrt();
        assert!((r1 - 0.9572 * ANGSTROM).abs() < 1e-9);
    }

    #[test]
    fn bilayer_counts_and_interlayer_distance() {
        let s = bilayer_graphene(2, 2, 2.6, 25.0);
        assert_eq!(s.atoms.len(), 32);
        // layers at lz/2 ± d/2
        let zs: Vec<f64> = s.atoms.iter().map(|a| a.pos[2]).collect();
        let zmin = zs.iter().cloned().fold(f64::INFINITY, f64::min);
        let zmax = zs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((zmax - zmin - 2.6 * ANGSTROM).abs() < 1e-9);
    }

    #[test]
    fn bilayer_is_closed_shell() {
        let s = bilayer_graphene(2, 1, 2.6, 20.0);
        assert_eq!(s.n_electrons() % 2, 0);
        assert_eq!(s.n_electrons(), 16 * 4); // C pseudo Z_ion = 4
    }
}
