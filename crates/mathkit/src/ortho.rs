//! Orthonormalization kernels used by LOBPCG and the SCF band solver.
//!
//! Cholesky-QR is the communication-friendly choice in the distributed
//! setting (one Gram-matrix Allreduce + one local triangular solve), which is
//! why the paper's LOBPCG uses it; modified Gram-Schmidt is the robust
//! fallback when the Gram matrix loses positive definiteness.

use crate::chol::{cholesky, solve_right_lower_transpose};
use crate::gemm::syrk_tn;
use crate::mat::Mat;

/// Orthonormalize the columns of `s` via Cholesky-QR: `G = SᵀS = LLᵀ`,
/// `Q = S L⁻ᵀ`. Returns `Err(pivot)` if the Gram matrix is numerically
/// rank-deficient (caller should drop directions or fall back to MGS).
pub fn cholesky_qr(s: &Mat) -> Result<Mat, usize> {
    let g = syrk_tn(s);
    let l = cholesky(&g)?;
    Ok(solve_right_lower_transpose(s, &l))
}

/// Modified Gram-Schmidt with re-orthogonalization pass; drops columns whose
/// residual norm falls below `drop_tol` (returns only the surviving columns).
pub fn modified_gram_schmidt(s: &Mat, drop_tol: f64) -> Mat {
    let (m, n) = s.shape();
    let mut kept: Vec<Vec<f64>> = Vec::with_capacity(n);
    for j in 0..n {
        let mut v = s.col(j).to_vec();
        for _pass in 0..2 {
            for q in &kept {
                let dot: f64 = q.iter().zip(v.iter()).map(|(a, b)| a * b).sum();
                for (vi, qi) in v.iter_mut().zip(q.iter()) {
                    *vi -= dot * qi;
                }
            }
        }
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > drop_tol {
            for x in &mut v {
                *x /= norm;
            }
            kept.push(v);
        }
    }
    let mut out = Mat::zeros(m, kept.len());
    for (j, v) in kept.iter().enumerate() {
        out.col_mut(j).copy_from_slice(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_tn;

    #[test]
    fn cholesky_qr_orthonormal() {
        let mut rng = rand::thread_rng();
        let s = Mat::random(25, 6, &mut rng);
        let q = cholesky_qr(&s).unwrap();
        assert_eq!(q.shape(), (25, 6));
        assert!(gemm_tn(&q, &q).max_abs_diff(&Mat::eye(6)) < 1e-9);
    }

    #[test]
    fn cholesky_qr_preserves_span() {
        // Q must reproduce S: S = Q (QᵀS).
        let mut rng = rand::thread_rng();
        let s = Mat::random(12, 4, &mut rng);
        let q = cholesky_qr(&s).unwrap();
        let proj = gemm_tn(&q, &s);
        let recon = crate::gemm::matmul(&q, &proj);
        assert!(recon.max_abs_diff(&s) < 1e-9);
    }

    #[test]
    fn cholesky_qr_detects_rank_deficiency() {
        let mut s = Mat::zeros(10, 3);
        for i in 0..10 {
            s[(i, 0)] = (i + 1) as f64;
            s[(i, 1)] = 2.0 * (i + 1) as f64; // duplicate direction
            s[(i, 2)] = (-(i as f64)).exp();
        }
        assert!(cholesky_qr(&s).is_err());
    }

    #[test]
    fn mgs_orthonormal_and_drops_duplicates() {
        let mut s = Mat::zeros(10, 3);
        for i in 0..10 {
            s[(i, 0)] = (i + 1) as f64;
            s[(i, 1)] = 2.0 * (i + 1) as f64;
            s[(i, 2)] = if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        let q = modified_gram_schmidt(&s, 1e-10);
        assert_eq!(q.ncols(), 2, "duplicate column must be dropped");
        assert!(gemm_tn(&q, &q).max_abs_diff(&Mat::eye(2)) < 1e-10);
    }

    #[test]
    fn mgs_handles_empty_and_zero() {
        let s = Mat::zeros(5, 2);
        let q = modified_gram_schmidt(&s, 1e-12);
        assert_eq!(q.ncols(), 0);
    }
}
