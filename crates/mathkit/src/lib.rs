//! # mathkit — dense linear algebra substrate
//!
//! This crate replaces the roles played by MKL / LAPACK / ScaLAPACK in the
//! original PWDFT-based LR-TDDFT implementation:
//!
//! * [`Mat`] — a column-major dense `f64` matrix (the layout LAPACK and the
//!   paper's wavefunction arrays use),
//! * [`gemm`] — blocked, Rayon-parallel general matrix multiply,
//! * [`eigen`] — symmetric eigensolver (Householder tridiagonalization +
//!   implicit-shift QL), the stand-in for `ScaLAPACK::SYEVD`,
//! * [`qr`] — Householder QR with column pivoting (QRCP), including the
//!   randomized Gaussian-sketch variant used for ISDF point selection,
//! * [`chol`] — Cholesky factorization and triangular solves,
//! * [`lstsq`] — least-squares solvers used by the ISDF Galerkin fit,
//! * [`ortho`] — Cholesky-QR orthonormalization used by LOBPCG.
//!
//! Everything is pure Rust: no BLAS/LAPACK bindings, so the complexity
//! behaviour reported in the paper's Tables 2 and 4 is reproduced by code we
//! control and can instrument.

pub mod chol;
pub mod davidson;
pub mod eigen;
pub mod gemm;
pub mod lobpcg;
pub mod lstsq;
pub mod lu;
pub mod mat;
pub mod mixed;
pub mod ortho;
pub mod qr;
pub mod simd;

pub use chol::{cholesky, solve_lower, solve_lower_transpose, solve_spd};
pub use davidson::{davidson, DavidsonOptions};
pub use lobpcg::{
    lobpcg, lobpcg_refined, no_precond, LobpcgOptions, LobpcgResult, RefinedResult,
    LOBPCG_CHECKPOINT,
};
pub use eigen::{syev, Eigen};
pub use gemm::{
    gemm, gemm_tn, gemv, matmul, syrk_nt, syrk_nt_scaled, syrk_tn, syrk_tn_scaled, Transpose,
};
pub use lstsq::{lstsq_normal, lstsq_qr};
pub use lu::{lu_decompose, solve_general, Lu};
pub use mat::Mat;
pub use mixed::{gemm_mixed, gemm_mixed_packed, MatF32, PackedF32};
pub use ortho::{cholesky_qr, modified_gram_schmidt};
pub use qr::{qr_householder, qrcp, qrcp_select, randomized_qrcp_select};
pub use simd::{active_kernel, force_kernel, Kernel};
