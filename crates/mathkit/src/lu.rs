//! LU factorization with partial pivoting — the general linear solve used
//! where Cholesky's SPD requirement doesn't hold (e.g. non-symmetric
//! projected systems and the Galerkin fits of ill-conditioned ISDF bases).

use crate::mat::Mat;

/// Packed LU factors: `P·A = L·U` with unit-diagonal `L` stored below the
/// diagonal of `lu`, `U` on and above it, and `perm` the row permutation.
pub struct Lu {
    lu: Mat,
    perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    sign: f64,
}

/// Factorize a square matrix. Returns `Err(col)` on exact singularity.
pub fn lu_decompose(a: &Mat) -> Result<Lu, usize> {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "LU needs a square matrix");
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;
    for k in 0..n {
        // Partial pivot: largest magnitude in column k at/below the diagonal.
        let mut piv = k;
        let mut pmax = lu[(k, k)].abs();
        for i in (k + 1)..n {
            let v = lu[(i, k)].abs();
            if v > pmax {
                pmax = v;
                piv = i;
            }
        }
        if pmax == 0.0 {
            return Err(k);
        }
        if piv != k {
            for j in 0..n {
                let t = lu[(k, j)];
                lu[(k, j)] = lu[(piv, j)];
                lu[(piv, j)] = t;
            }
            perm.swap(k, piv);
            sign = -sign;
        }
        let pivot = lu[(k, k)];
        for i in (k + 1)..n {
            let m = lu[(i, k)] / pivot;
            lu[(i, k)] = m;
            for j in (k + 1)..n {
                let upd = m * lu[(k, j)];
                lu[(i, j)] -= upd;
            }
        }
    }
    Ok(Lu { lu, perm, sign })
}

impl Lu {
    /// Solve `A X = B` for multiple right-hand sides.
    pub fn solve(&self, b: &Mat) -> Mat {
        let n = self.lu.nrows();
        assert_eq!(b.nrows(), n);
        let mut x = Mat::zeros(n, b.ncols());
        for j in 0..b.ncols() {
            // Apply permutation.
            for i in 0..n {
                x[(i, j)] = b[(self.perm[i], j)];
            }
            // Forward substitution (unit lower).
            for i in 1..n {
                let mut s = x[(i, j)];
                for k in 0..i {
                    s -= self.lu[(i, k)] * x[(k, j)];
                }
                x[(i, j)] = s;
            }
            // Back substitution.
            for i in (0..n).rev() {
                let mut s = x[(i, j)];
                for k in (i + 1)..n {
                    s -= self.lu[(i, k)] * x[(k, j)];
                }
                x[(i, j)] = s / self.lu[(i, i)];
            }
        }
        x
    }

    /// Determinant from the factorization.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.lu.nrows() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Explicit inverse (test/diagnostic use; prefer [`Lu::solve`]).
    pub fn inverse(&self) -> Mat {
        self.solve(&Mat::eye(self.lu.nrows()))
    }
}

/// One-shot general solve `A X = B`.
pub fn solve_general(a: &Mat, b: &Mat) -> Result<Mat, usize> {
    Ok(lu_decompose(a)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    #[test]
    fn solve_recovers_known_solution() {
        let mut rng = rand::thread_rng();
        let a = Mat::random(9, 9, &mut rng);
        let x_true = Mat::random(9, 3, &mut rng);
        let b = matmul(&a, &x_true);
        let x = solve_general(&a, &b).unwrap();
        assert!(x.max_abs_diff(&x_true) < 1e-9);
    }

    #[test]
    fn determinant_of_triangular() {
        let a = Mat::from_rows(&[&[2.0, 5.0, 1.0], &[0.0, 3.0, 7.0], &[0.0, 0.0, -4.0]]);
        let f = lu_decompose(&a).unwrap();
        assert!((f.det() - (-24.0)).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_tracks_pivots() {
        // A matrix that forces a row swap.
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let f = lu_decompose(&a).unwrap();
        assert!((f.det() + 1.0).abs() < 1e-15);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let mut rng = rand::thread_rng();
        let a = Mat::random(7, 7, &mut rng);
        let inv = lu_decompose(&a).unwrap().inverse();
        assert!(matmul(&inv, &a).max_abs_diff(&Mat::eye(7)) < 1e-9);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(lu_decompose(&a).is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Mat::from_rows(&[&[0.0, 2.0], &[3.0, 1.0]]);
        let b = Mat::from_rows(&[&[4.0], &[5.0]]);
        let x = solve_general(&a, &b).unwrap();
        // 2y = 4 → y = 2; 3x + y = 5 → x = 1
        assert!((x[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_cholesky_on_spd() {
        let mut rng = rand::thread_rng();
        let g = {
            let b = Mat::random(12, 8, &mut rng);
            let mut g = crate::gemm::syrk_tn(&b);
            for i in 0..8 {
                g[(i, i)] += 1.0;
            }
            g
        };
        let rhs = Mat::random(8, 2, &mut rng);
        let x_lu = solve_general(&g, &rhs).unwrap();
        let x_ch = crate::chol::solve_spd(&g, &rhs).unwrap();
        assert!(x_lu.max_abs_diff(&x_ch) < 1e-9);
    }
}
