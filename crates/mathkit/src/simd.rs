//! Explicit SIMD microkernels with one-time runtime dispatch.
//!
//! The packed GEMM engine in [`crate::gemm`] used to rely on `#[inline(never)]`
//! coaxing LLVM into auto-vectorizing the register tile. This module replaces
//! that hope with explicit `std::arch` AVX2 kernels selected once per process
//! by [`active_kernel`], plus a bit-compatible scalar fallback.
//!
//! ## Bit-compatibility contract
//!
//! Every f64 kernel here performs, per output element, the *same sequence of
//! IEEE-754 operations* as its scalar twin: separate multiply and add (never
//! a fused multiply-add), with the reduction over the shared dimension folded
//! in ascending order into one accumulator per element. Vectorizing over the
//! *row* index only changes which elements are computed together, not the
//! per-element operation stream — so `Avx2` and `Scalar` produce bitwise
//! identical results, and the solver pipeline's results are independent of
//! the host CPU. The dispatch override (`MATHKIT_KERNEL`, [`force_kernel`])
//! exists so tests and CI can prove that property rather than assume it.
//!
//! The mixed-precision kernels (f32 storage, f64 accumulation) are the one
//! place FMA is used: their scalar twin folds with [`f64::mul_add`], which is
//! correctly rounded and therefore also bitwise identical to the `vfmadd`
//! instruction the AVX2 path issues.
//!
//! [`dot`] uses a 4-lane split reduction (documented at the function) and is
//! intended for new code where the fold order is free; the solver paths keep
//! their historical sequential folds.

use std::sync::atomic::{AtomicU8, Ordering};

/// Microkernel row height (matches `gemm::MR`).
pub(crate) const MR: usize = 8;

/// Which kernel family [`active_kernel`] resolved to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Explicit AVX2 (+FMA for the mixed-precision kernels) `std::arch` code.
    Avx2,
    /// Portable scalar loops, bitwise identical to the AVX2 kernels.
    Scalar,
}

impl Kernel {
    /// Short name used in dispatch counters and reports.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Avx2 => "avx2",
            Kernel::Scalar => "scalar",
        }
    }
}

/// 0 = undecided, 1 = Avx2, 2 = Scalar.
static KERNEL_STATE: AtomicU8 = AtomicU8::new(0);

/// Resolve the kernel family for this process (cached after the first call).
///
/// Order: `MATHKIT_KERNEL` env override (`auto` / `avx2` / `scalar`), then
/// runtime CPU feature detection (`avx2` *and* `fma` required — every AVX2
/// part of interest has both, and the mixed-precision kernels need FMA).
#[inline]
pub fn active_kernel() -> Kernel {
    match KERNEL_STATE.load(Ordering::Relaxed) {
        1 => Kernel::Avx2,
        2 => Kernel::Scalar,
        _ => {
            let k = detect();
            KERNEL_STATE.store(if k == Kernel::Avx2 { 1 } else { 2 }, Ordering::Relaxed);
            k
        }
    }
}

/// Test/CI hook: pin the dispatcher to one kernel (`Some`) or reset it to
/// re-detect on next use (`None`). Safe at any time — both kernels produce
/// bitwise identical results, so racing callers only affects performance.
pub fn force_kernel(k: Option<Kernel>) {
    let code = match k {
        Some(Kernel::Avx2) => {
            assert!(avx2_available(), "force_kernel(Avx2) on a CPU without avx2+fma");
            1
        }
        Some(Kernel::Scalar) => 2,
        None => 0,
    };
    KERNEL_STATE.store(code, Ordering::Relaxed);
}

/// Whether the host CPU can run the AVX2 kernels.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn detect() -> Kernel {
    match std::env::var("MATHKIT_KERNEL").as_deref() {
        Ok("scalar") => return Kernel::Scalar,
        Ok("avx2") => {
            assert!(avx2_available(), "MATHKIT_KERNEL=avx2 but the CPU lacks avx2+fma");
            return Kernel::Avx2;
        }
        Ok("") | Ok("auto") | Err(_) => {}
        Ok(other) => panic!("MATHKIT_KERNEL must be auto|avx2|scalar, got {other:?}"),
    }
    if avx2_available() {
        Kernel::Avx2
    } else {
        Kernel::Scalar
    }
}

// ---------------------------------------------------------------------------
// Blocked-path microkernels: rank-kc update of an MR × NR register tile from
// packed micropanels (`ap`: kc steps of MR values, `bp`: kc steps of NR
// values). `acc[j * MR + i] = Σ_l ap[l * MR + i] · bp[l * NR + j]`.
// ---------------------------------------------------------------------------

/// Dispatching microkernel entry. `nr` must be 4 or 8; `acc` holds at least
/// `nr * MR` elements and is fully overwritten.
pub(crate) fn microkernel_f64(kernel: Kernel, nr: usize, kc: usize, ap: &[f64], bp: &[f64], acc: &mut [f64]) {
    debug_assert!(nr == 4 || nr == 8);
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * nr && acc.len() >= nr * MR);
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe {
            if nr == 8 {
                mk8x8_avx2(kc, ap, bp, acc);
            } else {
                mk8x4_avx2(kc, ap, bp, acc);
            }
        },
        _ => {
            if nr == 8 {
                mk_scalar::<8>(kc, ap, bp, acc);
            } else {
                mk_scalar::<4>(kc, ap, bp, acc);
            }
        }
    }
}

/// Scalar twin of the AVX2 microkernels — the historical auto-vectorized
/// fold: per element, ascending-`l` multiply-then-add into one accumulator.
#[inline(never)]
fn mk_scalar<const NR: usize>(kc: usize, ap: &[f64], bp: &[f64], out: &mut [f64]) {
    let mut acc = [[0.0f64; MR]; NR];
    for (a, b) in ap.chunks_exact(MR).take(kc).zip(bp.chunks_exact(NR)) {
        for j in 0..NR {
            let bj = b[j];
            for i in 0..MR {
                acc[j][i] += a[i] * bj;
            }
        }
    }
    for (j, accj) in acc.iter().enumerate() {
        out[j * MR..(j + 1) * MR].copy_from_slice(accj);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mk8x4_avx2(kc: usize, ap: &[f64], bp: &[f64], out: &mut [f64]) {
    use std::arch::x86_64::*;
    let mut acc = [_mm256_setzero_pd(); 8]; // [2j] = rows 0..4, [2j+1] = rows 4..8
    let mut a = ap.as_ptr();
    let mut b = bp.as_ptr();
    for _ in 0..kc {
        let a0 = _mm256_loadu_pd(a);
        let a1 = _mm256_loadu_pd(a.add(4));
        for j in 0..4 {
            let bj = _mm256_set1_pd(*b.add(j));
            acc[2 * j] = _mm256_add_pd(acc[2 * j], _mm256_mul_pd(a0, bj));
            acc[2 * j + 1] = _mm256_add_pd(acc[2 * j + 1], _mm256_mul_pd(a1, bj));
        }
        a = a.add(MR);
        b = b.add(4);
    }
    for j in 0..4 {
        _mm256_storeu_pd(out.as_mut_ptr().add(j * MR), acc[2 * j]);
        _mm256_storeu_pd(out.as_mut_ptr().add(j * MR + 4), acc[2 * j + 1]);
    }
}

/// Wider 8×8 variant: 16 ymm accumulators — the whole tile stays in the
/// register file, halving the B-broadcast traffic per flop vs 8×4.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mk8x8_avx2(kc: usize, ap: &[f64], bp: &[f64], out: &mut [f64]) {
    use std::arch::x86_64::*;
    let mut acc = [_mm256_setzero_pd(); 16];
    let mut a = ap.as_ptr();
    let mut b = bp.as_ptr();
    for _ in 0..kc {
        let a0 = _mm256_loadu_pd(a);
        let a1 = _mm256_loadu_pd(a.add(4));
        for j in 0..8 {
            let bj = _mm256_set1_pd(*b.add(j));
            acc[2 * j] = _mm256_add_pd(acc[2 * j], _mm256_mul_pd(a0, bj));
            acc[2 * j + 1] = _mm256_add_pd(acc[2 * j + 1], _mm256_mul_pd(a1, bj));
        }
        a = a.add(MR);
        b = b.add(8);
    }
    for j in 0..8 {
        _mm256_storeu_pd(out.as_mut_ptr().add(j * MR), acc[2 * j]);
        _mm256_storeu_pd(out.as_mut_ptr().add(j * MR + 4), acc[2 * j + 1]);
    }
}

// ---------------------------------------------------------------------------
// Skinny-shape tile kernels: one MR-row strip of op(A), packed once over the
// FULL shared dimension (no KC split), against a k × n column-major B buffer
// with n ≤ MR. Two fold variants mirroring the serial kernels exactly:
//
//  * axpy fold (op(A) untransposed): C tile pre-scaled by beta lives in the
//    accumulator registers; per l, `c += (alpha·b[l,j]) · a[:,l]` with the
//    historical `alpha·b == 0` skip.
//  * dot fold (op(A) transposed): zero-initialized accumulators collect
//    `Σ_l a·b`, then `c += alpha · acc` once at the end.
//
// Partial strips (`mr_eff < MR`) always take the scalar twin — loading or
// storing a full ymm row there would touch out-of-bounds C memory — so the
// Avx2/Scalar choice never changes results there either.
// ---------------------------------------------------------------------------

/// Axpy-fold skinny tile. `ap` holds the strip's rows of untransposed A with
/// column stride `astride`: either one zero-padded packed `MR × k` strip
/// (`astride == MR`) or a window straight into column-major A itself
/// (`astride == lda`) — the MR rows of one strip are contiguous within each
/// A column, so no pack is needed and the large-`k` shapes skip the pack
/// traffic entirely. `b` is a `k × n` window of a column-major staging
/// buffer with column stride `ldb ≥ k` (panel callers window the full
/// staged B), `c` points at element `(strip_row_0, 0)` of an `ldc`-row
/// column-major C whose tile was already scaled by beta.
///
/// # Safety
/// Caller guarantees exclusive access to rows `[0, mr_eff)` of all `n`
/// columns of `c` (stride `ldc`), `mr_eff ≤ MR`, `n ≤ MR`, and that
/// `ap[l * astride .. l * astride + mr_eff]` is in bounds for every
/// `l < k` — plus a full `MR` elements per column when `mr_eff == MR`.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn skinny_axpy_tile(
    kernel: Kernel,
    k: usize,
    ap: &[f64],
    astride: usize,
    b: &[f64],
    ldb: usize,
    n: usize,
    mr_eff: usize,
    alpha: f64,
    c: *mut f64,
    ldc: usize,
) {
    debug_assert!((1..=MR).contains(&n) && mr_eff <= MR && astride >= mr_eff && ldb >= k);
    debug_assert!(
        k >= 1 && ap.len() >= (k - 1) * astride + mr_eff && b.len() >= (n - 1) * ldb + k
    );
    #[cfg(target_arch = "x86_64")]
    if kernel == Kernel::Avx2 && mr_eff == MR {
        // ≤ 4 columns per microkernel pass: 8 accumulator ymm plus the two
        // A-row registers and the broadcast stay inside the 16-register
        // file (8 columns spill accumulators every iteration). The strip is
        // L2-resident, so the second pass re-reads it cheaply, and the
        // per-element fold over l is unchanged — still bitwise identical to
        // the column-at-a-time scalar twin.
        let mut j0 = 0;
        while j0 < n {
            let nb = (n - j0).min(4);
            let bj = &b[j0 * ldb..];
            let cj = c.add(j0 * ldc);
            match nb {
                1 => skinny_axpy_avx2::<1>(k, ap, astride, bj, ldb, alpha, cj, ldc),
                2 => skinny_axpy_avx2::<2>(k, ap, astride, bj, ldb, alpha, cj, ldc),
                3 => skinny_axpy_avx2::<3>(k, ap, astride, bj, ldb, alpha, cj, ldc),
                _ => skinny_axpy_avx2::<4>(k, ap, astride, bj, ldb, alpha, cj, ldc),
            }
            j0 += nb;
        }
        return;
    }
    let _ = kernel;
    skinny_axpy_scalar(k, ap, astride, b, ldb, n, mr_eff, alpha, c, ldc);
}

#[allow(clippy::too_many_arguments)]
unsafe fn skinny_axpy_scalar(
    k: usize,
    ap: &[f64],
    astride: usize,
    b: &[f64],
    ldb: usize,
    n: usize,
    mr_eff: usize,
    alpha: f64,
    c: *mut f64,
    ldc: usize,
) {
    for j in 0..n {
        let cc = std::slice::from_raw_parts_mut(c.add(j * ldc), mr_eff);
        for l in 0..k {
            let blj = alpha * b[l + j * ldb];
            if blj == 0.0 {
                continue;
            }
            let a = &ap[l * astride..l * astride + mr_eff];
            for (cv, &av) in cc.iter_mut().zip(a.iter()) {
                *cv += blj * av;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::needless_range_loop, clippy::too_many_arguments)]
unsafe fn skinny_axpy_avx2<const N: usize>(
    k: usize,
    ap: &[f64],
    astride: usize,
    b: &[f64],
    ldb: usize,
    alpha: f64,
    c: *mut f64,
    ldc: usize,
) {
    use std::arch::x86_64::*;
    let mut lo = [_mm256_setzero_pd(); N];
    let mut hi = [_mm256_setzero_pd(); N];
    for j in 0..N {
        lo[j] = _mm256_loadu_pd(c.add(j * ldc));
        hi[j] = _mm256_loadu_pd(c.add(j * ldc + 4));
    }
    let mut a = ap.as_ptr();
    for l in 0..k {
        let a0 = _mm256_loadu_pd(a);
        let a1 = _mm256_loadu_pd(a.add(4));
        for j in 0..N {
            let blj = alpha * *b.get_unchecked(l + j * ldb);
            if blj != 0.0 {
                let bv = _mm256_set1_pd(blj);
                lo[j] = _mm256_add_pd(lo[j], _mm256_mul_pd(bv, a0));
                hi[j] = _mm256_add_pd(hi[j], _mm256_mul_pd(bv, a1));
            }
        }
        a = a.add(astride);
    }
    for j in 0..N {
        _mm256_storeu_pd(c.add(j * ldc), lo[j]);
        _mm256_storeu_pd(c.add(j * ldc + 4), hi[j]);
    }
}

/// Dot-fold skinny tile (op(A) transposed case). `ap` is one zero-padded
/// packed `MR × k` strip (stride `MR` — the row-interleaved layout is what
/// lets the vector load gather one `l` slice across the 8 rows, so unlike
/// the axpy fold this path cannot read transposed A in place); otherwise
/// the same C-tile contract as [`skinny_axpy_tile`]; C receives
/// `c += alpha · Σ_l a·b`.
///
/// # Safety
/// Same C-tile exclusivity as [`skinny_axpy_tile`], with
/// `ap.len() ≥ k · MR`.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn skinny_dot_tile(
    kernel: Kernel,
    k: usize,
    ap: &[f64],
    b: &[f64],
    n: usize,
    mr_eff: usize,
    alpha: f64,
    c: *mut f64,
    ldc: usize,
) {
    debug_assert!((1..=MR).contains(&n) && mr_eff <= MR);
    debug_assert!(ap.len() >= k * MR && b.len() >= k * n);
    #[cfg(target_arch = "x86_64")]
    if kernel == Kernel::Avx2 && mr_eff == MR {
        // Same ≤ 4-column grouping as the axpy tile (register pressure);
        // per-element accumulation order over l is unaffected.
        let mut j0 = 0;
        while j0 < n {
            let nb = (n - j0).min(4);
            let bj = &b[j0 * k..];
            let cj = c.add(j0 * ldc);
            match nb {
                1 => skinny_dot_avx2::<1>(k, ap, bj, alpha, cj, ldc),
                2 => skinny_dot_avx2::<2>(k, ap, bj, alpha, cj, ldc),
                3 => skinny_dot_avx2::<3>(k, ap, bj, alpha, cj, ldc),
                _ => skinny_dot_avx2::<4>(k, ap, bj, alpha, cj, ldc),
            }
            j0 += nb;
        }
        return;
    }
    let _ = kernel;
    skinny_dot_scalar(k, ap, b, n, mr_eff, alpha, c, ldc);
}

#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
unsafe fn skinny_dot_scalar(
    k: usize,
    ap: &[f64],
    b: &[f64],
    n: usize,
    mr_eff: usize,
    alpha: f64,
    c: *mut f64,
    ldc: usize,
) {
    let mut acc = [[0.0f64; MR]; MR];
    for l in 0..k {
        let a = &ap[l * MR..l * MR + mr_eff];
        for j in 0..n {
            let blj = b[l + j * k];
            for (av, accv) in a.iter().zip(acc[j].iter_mut()) {
                *accv += *av * blj;
            }
        }
    }
    for j in 0..n {
        let cc = std::slice::from_raw_parts_mut(c.add(j * ldc), mr_eff);
        for (cv, &accv) in cc.iter_mut().zip(acc[j].iter()) {
            *cv += alpha * accv;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::needless_range_loop)]
unsafe fn skinny_dot_avx2<const N: usize>(
    k: usize,
    ap: &[f64],
    b: &[f64],
    alpha: f64,
    c: *mut f64,
    ldc: usize,
) {
    use std::arch::x86_64::*;
    let mut lo = [_mm256_setzero_pd(); N];
    let mut hi = [_mm256_setzero_pd(); N];
    let mut a = ap.as_ptr();
    for l in 0..k {
        let a0 = _mm256_loadu_pd(a);
        let a1 = _mm256_loadu_pd(a.add(4));
        for j in 0..N {
            let bv = _mm256_set1_pd(*b.get_unchecked(l + j * k));
            lo[j] = _mm256_add_pd(lo[j], _mm256_mul_pd(a0, bv));
            hi[j] = _mm256_add_pd(hi[j], _mm256_mul_pd(a1, bv));
        }
        a = a.add(MR);
    }
    let av = _mm256_set1_pd(alpha);
    for j in 0..N {
        let clo = _mm256_loadu_pd(c.add(j * ldc));
        let chi = _mm256_loadu_pd(c.add(j * ldc + 4));
        _mm256_storeu_pd(c.add(j * ldc), _mm256_add_pd(clo, _mm256_mul_pd(av, lo[j])));
        _mm256_storeu_pd(c.add(j * ldc + 4), _mm256_add_pd(chi, _mm256_mul_pd(av, hi[j])));
    }
}

// ---------------------------------------------------------------------------
// Mixed-precision tile: f32 packed operands, f64 FMA accumulation, f64 C.
// The scalar twin folds with `f64::mul_add`, which is correctly rounded —
// exactly what `vfmadd` computes — so both kernels agree bitwise here too.
// ---------------------------------------------------------------------------

/// Mixed-precision dot-fold tile: `c[i,j] = alpha · Σ_l (a64·b64) + beta · c[i,j]`
/// where `a64`/`b64` are the exact f64 promotions of the packed f32 values.
/// `ap` is one zero-padded `MR × k` f32 strip, `b` a `k × n` column-major f32
/// buffer, `n ≤ MR`.
///
/// # Safety
/// Same tile-exclusivity contract as [`skinny_axpy_tile`].
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn mixed_dot_tile(
    kernel: Kernel,
    k: usize,
    ap: &[f32],
    b: &[f32],
    n: usize,
    mr_eff: usize,
    alpha: f64,
    beta: f64,
    c: *mut f64,
    ldc: usize,
) {
    debug_assert!((1..=MR).contains(&n) && mr_eff <= MR);
    debug_assert!(ap.len() >= k * MR && b.len() >= k * n);
    #[cfg(target_arch = "x86_64")]
    if kernel == Kernel::Avx2 && mr_eff == MR {
        macro_rules! go {
            ($n:literal) => {
                mixed_dot_avx2::<$n>(k, ap, b, alpha, beta, c, ldc)
            };
        }
        match n {
            1 => go!(1),
            2 => go!(2),
            3 => go!(3),
            4 => go!(4),
            5 => go!(5),
            6 => go!(6),
            7 => go!(7),
            _ => go!(8),
        }
        return;
    }
    let _ = kernel;
    mixed_dot_scalar(k, ap, b, n, mr_eff, alpha, beta, c, ldc);
}

#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
unsafe fn mixed_dot_scalar(
    k: usize,
    ap: &[f32],
    b: &[f32],
    n: usize,
    mr_eff: usize,
    alpha: f64,
    beta: f64,
    c: *mut f64,
    ldc: usize,
) {
    let mut acc = [[0.0f64; MR]; MR];
    for l in 0..k {
        let a = &ap[l * MR..l * MR + mr_eff];
        for j in 0..n {
            let blj = b[l + j * k] as f64;
            for (av, accv) in a.iter().zip(acc[j].iter_mut()) {
                *accv = (*av as f64).mul_add(blj, *accv);
            }
        }
    }
    for j in 0..n {
        let cc = std::slice::from_raw_parts_mut(c.add(j * ldc), mr_eff);
        for (cv, &accv) in cc.iter_mut().zip(acc[j].iter()) {
            let t = alpha * accv;
            *cv = if beta == 0.0 { t } else { beta * *cv + t };
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::needless_range_loop)]
unsafe fn mixed_dot_avx2<const N: usize>(
    k: usize,
    ap: &[f32],
    b: &[f32],
    alpha: f64,
    beta: f64,
    c: *mut f64,
    ldc: usize,
) {
    use std::arch::x86_64::*;
    let mut lo = [_mm256_setzero_pd(); N];
    let mut hi = [_mm256_setzero_pd(); N];
    let mut a = ap.as_ptr();
    for l in 0..k {
        let a0 = _mm256_cvtps_pd(_mm_loadu_ps(a));
        let a1 = _mm256_cvtps_pd(_mm_loadu_ps(a.add(4)));
        for j in 0..N {
            let bv = _mm256_set1_pd(*b.get_unchecked(l + j * k) as f64);
            lo[j] = _mm256_fmadd_pd(a0, bv, lo[j]);
            hi[j] = _mm256_fmadd_pd(a1, bv, hi[j]);
        }
        a = a.add(MR);
    }
    let av = _mm256_set1_pd(alpha);
    for j in 0..N {
        let tlo = _mm256_mul_pd(av, lo[j]);
        let thi = _mm256_mul_pd(av, hi[j]);
        let (rlo, rhi) = if beta == 0.0 {
            (tlo, thi)
        } else {
            let bv = _mm256_set1_pd(beta);
            let clo = _mm256_loadu_pd(c.add(j * ldc));
            let chi = _mm256_loadu_pd(c.add(j * ldc + 4));
            (
                _mm256_add_pd(_mm256_mul_pd(bv, clo), tlo),
                _mm256_add_pd(_mm256_mul_pd(bv, chi), thi),
            )
        };
        _mm256_storeu_pd(c.add(j * ldc), rlo);
        _mm256_storeu_pd(c.add(j * ldc + 4), rhi);
    }
}

// ---------------------------------------------------------------------------
// Vectorized level-1 helpers. All elementwise ones are bit-identical to their
// obvious scalar loops (independent elements, one mul + one add each).
// ---------------------------------------------------------------------------

/// `y += alpha · x` (elementwise; bitwise identical across kernels).
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { axpy_avx2(alpha, x, y) },
        _ => {
            for (yv, &xv) in y.iter_mut().zip(x.iter()) {
                *yv += alpha * xv;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2(alpha: f64, x: &[f64], y: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = x.len();
    let av = _mm256_set1_pd(alpha);
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let mut i = 0;
    while i + 4 <= n {
        let yv = _mm256_loadu_pd(yp.add(i));
        let xv = _mm256_loadu_pd(xp.add(i));
        _mm256_storeu_pd(yp.add(i), _mm256_add_pd(yv, _mm256_mul_pd(av, xv)));
        i += 4;
    }
    while i < n {
        *yp.add(i) += alpha * *xp.add(i);
        i += 1;
    }
}

/// `out[i] = a[i] · b[i]` (bitwise identical across kernels).
pub fn pointwise_mul(out: &mut [f64], a: &[f64], b: &[f64]) {
    assert!(out.len() == a.len() && out.len() == b.len());
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { pointwise_mul_avx2(out, a, b) },
        _ => {
            for ((o, &av), &bv) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
                *o = av * bv;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn pointwise_mul_avx2(out: &mut [f64], a: &[f64], b: &[f64]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let (op, ap, bp) = (out.as_mut_ptr(), a.as_ptr(), b.as_ptr());
    let mut i = 0;
    while i + 4 <= n {
        let prod = _mm256_mul_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)));
        _mm256_storeu_pd(op.add(i), prod);
        i += 4;
    }
    while i < n {
        *op.add(i) = *ap.add(i) * *bp.add(i);
        i += 1;
    }
}

/// `out[i] += a[i] · b[i]` (separate mul + add; bitwise identical across
/// kernels).
pub fn pointwise_muladd(out: &mut [f64], a: &[f64], b: &[f64]) {
    assert!(out.len() == a.len() && out.len() == b.len());
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { pointwise_muladd_avx2(out, a, b) },
        _ => {
            for ((o, &av), &bv) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn pointwise_muladd_avx2(out: &mut [f64], a: &[f64], b: &[f64]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let (op, ap, bp) = (out.as_mut_ptr(), a.as_ptr(), b.as_ptr());
    let mut i = 0;
    while i + 4 <= n {
        let prod = _mm256_mul_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)));
        _mm256_storeu_pd(op.add(i), _mm256_add_pd(_mm256_loadu_pd(op.add(i)), prod));
        i += 4;
    }
    while i < n {
        *op.add(i) += *ap.add(i) * *bp.add(i);
        i += 1;
    }
}

/// `acc[i] += x[i]²` (bitwise identical across kernels; used by the ISDF
/// pair-weight accumulation).
pub fn add_squares(acc: &mut [f64], x: &[f64]) {
    assert_eq!(acc.len(), x.len());
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { add_squares_avx2(acc, x) },
        _ => {
            for (a, &v) in acc.iter_mut().zip(x.iter()) {
                *a += v * v;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn add_squares_avx2(acc: &mut [f64], x: &[f64]) {
    use std::arch::x86_64::*;
    let n = acc.len();
    let (ap, xp) = (acc.as_mut_ptr(), x.as_ptr());
    let mut i = 0;
    while i + 4 <= n {
        let xv = _mm256_loadu_pd(xp.add(i));
        let av = _mm256_loadu_pd(ap.add(i));
        _mm256_storeu_pd(ap.add(i), _mm256_add_pd(av, _mm256_mul_pd(xv, xv)));
        i += 4;
    }
    while i < n {
        let v = *xp.add(i);
        *ap.add(i) += v * v;
        i += 1;
    }
}

/// Dot product with a fixed 4-lane split reduction: element `i` folds into
/// lane `i mod 4`, lanes reduce as `(l0 + l1) + (l2 + l3)` at the end. Both
/// kernels implement exactly this fold, so the result is bitwise identical
/// across them (but NOT identical to a plain sequential fold — use this only
/// where the reduction order is free, e.g. reports and new code).
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { dot_avx2(x, y) },
        _ => dot_scalar(x, y),
    }
}

fn dot_scalar(x: &[f64], y: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 4];
    for (i, (&xv, &yv)) in x.iter().zip(y.iter()).enumerate() {
        lanes[i % 4] += xv * yv;
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_avx2(x: &[f64], y: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let n = x.len();
    let (xp, yp) = (x.as_ptr(), y.as_ptr());
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        let prod = _mm256_mul_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)));
        acc = _mm256_add_pd(acc, prod);
        i += 4;
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    // Tail elements continue the `i mod 4` lane assignment (i - n4 == i % 4
    // because the vector loop consumed a multiple of 4).
    let mut lane = 0;
    while i < n {
        lanes[lane] += *xp.add(i) * *yp.add(i);
        lane += 1;
        i += 1;
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
}

/// Test support: serialize tests that pin the global dispatcher, and run a
/// closure under a forced kernel. Compiled only for tests.
#[cfg(test)]
pub(crate) mod testutil {
    use super::{force_kernel, Kernel};

    /// Serialize tests that pin the global dispatcher.
    pub(crate) fn dispatch_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Run `f` with the dispatcher pinned to `k`, restoring auto-detection.
    pub(crate) fn with_kernel<T>(k: Kernel, f: impl FnOnce() -> T) -> T {
        force_kernel(Some(k));
        let out = f();
        force_kernel(None);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{dispatch_lock, with_kernel};
    use super::*;

    #[test]
    fn detection_resolves_and_is_cached() {
        let _g = dispatch_lock();
        force_kernel(None);
        let k = active_kernel();
        assert_eq!(k, active_kernel());
        // An explicit env override (the CI scalar-fallback job sets
        // MATHKIT_KERNEL=scalar) wins over CPU detection.
        match std::env::var("MATHKIT_KERNEL").as_deref() {
            Ok("scalar") => assert_eq!(k.name(), "scalar"),
            Ok("avx2") => assert_eq!(k.name(), "avx2"),
            _ => {
                if avx2_available() {
                    assert_eq!(k.name(), "avx2");
                } else {
                    assert_eq!(k.name(), "scalar");
                }
            }
        }
        force_kernel(None);
    }

    #[test]
    fn force_kernel_overrides_detection() {
        let _g = dispatch_lock();
        force_kernel(Some(Kernel::Scalar));
        assert_eq!(active_kernel(), Kernel::Scalar);
        force_kernel(None);
    }

    #[test]
    fn microkernel_kernels_agree_bitwise() {
        let _g = dispatch_lock();
        if !avx2_available() {
            return;
        }
        for nr in [4usize, 8] {
            for kc in [0usize, 1, 3, 17, 64] {
                let ap: Vec<f64> =
                    (0..kc * MR).map(|i| ((i * 37 % 19) as f64 - 9.0) * 0.13).collect();
                let bp: Vec<f64> =
                    (0..kc * nr).map(|i| ((i * 23 % 17) as f64 - 8.0) * 0.07).collect();
                let mut acc_a = vec![f64::NAN; nr * MR];
                let mut acc_s = vec![f64::NAN; nr * MR];
                microkernel_f64(Kernel::Avx2, nr, kc, &ap, &bp, &mut acc_a);
                microkernel_f64(Kernel::Scalar, nr, kc, &ap, &bp, &mut acc_s);
                for (a, s) in acc_a.iter().zip(acc_s.iter()) {
                    assert_eq!(a.to_bits(), s.to_bits(), "nr={nr} kc={kc}");
                }
            }
        }
    }

    #[test]
    fn level1_helpers_agree_bitwise_across_kernels() {
        let _g = dispatch_lock();
        if !avx2_available() {
            return;
        }
        // Lengths straddling the 4-wide vector body and its scalar tail.
        for n in [0usize, 1, 3, 4, 5, 8, 31] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.731).sin() * 3.0).collect();
            let y0: Vec<f64> = (0..n).map(|i| (i as f64 * 1.17).cos() - 0.4).collect();

            let mut ya = y0.clone();
            let mut ys = y0.clone();
            with_kernel(Kernel::Avx2, || axpy(0.37, &x, &mut ya));
            with_kernel(Kernel::Scalar, || axpy(0.37, &x, &mut ys));
            assert_eq!(
                ya.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                ys.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );

            let mut oa = y0.clone();
            let mut os = y0.clone();
            with_kernel(Kernel::Avx2, || pointwise_muladd(&mut oa, &x, &y0));
            with_kernel(Kernel::Scalar, || pointwise_muladd(&mut os, &x, &y0));
            assert_eq!(oa.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), os.iter().map(|v| v.to_bits()).collect::<Vec<_>>());

            let mut ma = vec![0.0; n];
            let mut ms = vec![0.0; n];
            with_kernel(Kernel::Avx2, || pointwise_mul(&mut ma, &x, &y0));
            with_kernel(Kernel::Scalar, || pointwise_mul(&mut ms, &x, &y0));
            assert_eq!(ma, ms);

            let mut sa = y0.clone();
            let mut ss = y0.clone();
            with_kernel(Kernel::Avx2, || add_squares(&mut sa, &x));
            with_kernel(Kernel::Scalar, || add_squares(&mut ss, &x));
            assert_eq!(sa.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), ss.iter().map(|v| v.to_bits()).collect::<Vec<_>>());

            let da = with_kernel(Kernel::Avx2, || dot(&x, &y0));
            let ds = with_kernel(Kernel::Scalar, || dot(&x, &y0));
            assert_eq!(da.to_bits(), ds.to_bits(), "dot n={n}");
        }
    }

    #[test]
    fn mixed_tile_matches_mul_add_reference() {
        let _g = dispatch_lock();
        let k = 13;
        let n = 5;
        let ap: Vec<f32> = (0..k * MR).map(|i| ((i * 7 % 23) as f32 - 11.0) * 0.25).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 5 % 19) as f32 - 9.0) * 0.5).collect();
        let (alpha, beta) = (1.25, -0.5);
        let c0: Vec<f64> = (0..MR * n).map(|i| i as f64 * 0.1 - 0.3).collect();
        // mul_add reference, one accumulator per element.
        let mut expect = c0.clone();
        for j in 0..n {
            for i in 0..MR {
                let mut acc = 0.0f64;
                for l in 0..k {
                    acc = (ap[l * MR + i] as f64).mul_add(b[l + j * k] as f64, acc);
                }
                expect[j * MR + i] = beta * c0[j * MR + i] + alpha * acc;
            }
        }
        for kernel in [Kernel::Avx2, Kernel::Scalar] {
            if kernel == Kernel::Avx2 && !avx2_available() {
                continue;
            }
            let mut c = c0.clone();
            unsafe { mixed_dot_tile(kernel, k, &ap, &b, n, MR, alpha, beta, c.as_mut_ptr(), MR) };
            for (got, want) in c.iter().zip(expect.iter()) {
                assert_eq!(got.to_bits(), want.to_bits(), "{kernel:?}");
            }
        }
    }
}
