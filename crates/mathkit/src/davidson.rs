//! Block Davidson eigensolver.
//!
//! The paper (§1, §4.3) names Davidson [8] and LOBPCG [11] as the two
//! iterative subspace methods suitable for extracting the lowest excitations.
//! We implement both; the `repro ablation` harness compares them on the same
//! implicit Casida operator.
//!
//! Classic block Davidson: grow a search space `V` by preconditioned
//! residuals, Rayleigh–Ritz in `V`, restart (collapse to the current Ritz
//! block) when the space hits `max_space`.

use crate::eigen::syev;
use crate::gemm::{gemm, gemm_tn, Transpose};
use crate::lobpcg::{LobpcgOptions, LobpcgResult};
use crate::mat::Mat;
use crate::ortho::modified_gram_schmidt;

/// Options for [`davidson`]. Reuses the LOBPCG option struct for the common
/// fields plus a subspace cap.
#[derive(Clone, Copy, Debug, Default)]
pub struct DavidsonOptions {
    pub base: LobpcgOptions,
    /// Maximum subspace dimension before a restart (≥ 2k).
    pub max_space: usize,
}

/// Lowest `k = x0.ncols()` eigenpairs of the symmetric operator `apply`,
/// Davidson-style. `precond` has the same signature as in LOBPCG.
pub fn davidson<FA, FP>(
    apply: FA,
    precond: FP,
    x0: &Mat,
    opts: DavidsonOptions,
) -> LobpcgResult
where
    FA: Fn(&Mat) -> Mat,
    FP: Fn(&Mat, &[f64]) -> Mat,
{
    let n = x0.nrows();
    let k = x0.ncols();
    assert!(k > 0 && n >= k);
    let max_space = if opts.max_space == 0 { (6 * k).min(n) } else { opts.max_space.min(n) };
    assert!(max_space >= 2 * k || max_space == n, "max_space must allow growth");

    // V: current orthonormal search space; AV cached alongside.
    let mut v = modified_gram_schmidt(x0, 1e-12);
    assert_eq!(v.ncols(), k, "initial block rank-deficient");
    let mut av = apply(&v);

    let mut theta = vec![0.0; k];
    let mut ritz = Mat::zeros(n, k);
    let mut best_residual = f64::INFINITY;
    let mut iterations = 0;

    for it in 0..opts.base.max_iter {
        iterations = it + 1;
        // Rayleigh–Ritz in span(V).
        let mut h = gemm_tn(&v, &av);
        h.symmetrize();
        let eig = syev(&h);
        let cols: Vec<usize> = (0..k).collect();
        let coef = eig.vectors.select_cols(&cols);
        theta.copy_from_slice(&eig.values[..k]);
        // Ritz vectors X = V C and their images A X = (A V) C.
        ritz = Mat::zeros(n, k);
        gemm(1.0, &v, Transpose::No, &coef, Transpose::No, 0.0, &mut ritz);
        let mut aritz = Mat::zeros(n, k);
        gemm(1.0, &av, Transpose::No, &coef, Transpose::No, 0.0, &mut aritz);

        // Residuals R = A X − X Θ.
        let mut r = aritz;
        for (j, &th) in theta.iter().enumerate().take(k) {
            let xc = ritz.col(j).to_vec();
            for (rv, xv) in r.col_mut(j).iter_mut().zip(xc.iter()) {
                *rv -= th * xv;
            }
        }
        let resid = (0..k)
            .map(|j| {
                let rn = r.col(j).iter().map(|x| x * x).sum::<f64>().sqrt();
                rn / theta[j].abs().max(1.0)
            })
            .fold(0.0f64, f64::max);
        best_residual = best_residual.min(resid);
        obskit::instant(
            obskit::Stage::Diag,
            "davidson.iter",
            &[("iter", it as f64), ("resid", resid), ("theta_min", theta.iter().cloned().fold(f64::INFINITY, f64::min))],
        );
        if resid < opts.base.tol {
            return LobpcgResult {
                values: theta.clone(),
                vectors: ritz,
                iterations,
                residual: resid,
                converged: true,
            };
        }

        // New directions: preconditioned residuals, orthogonalized against V.
        let w = precond(&r, &theta);
        let restart = v.ncols() + w.ncols() > max_space;
        if restart {
            // Collapse the space to the current Ritz block.
            v = modified_gram_schmidt(&ritz, 1e-12);
            av = apply(&v);
        }
        // Orthogonalize W against V (two MGS passes), drop tiny directions.
        let mut grown = Mat::zeros(n, v.ncols() + w.ncols());
        for j in 0..v.ncols() {
            grown.col_mut(j).copy_from_slice(v.col(j));
        }
        for j in 0..w.ncols() {
            grown.col_mut(v.ncols() + j).copy_from_slice(w.col(j));
        }
        let grown = modified_gram_schmidt(&grown, 1e-10);
        if grown.ncols() <= v.ncols() {
            // No new directions survived — stagnation; return best so far.
            return LobpcgResult {
                values: theta.clone(),
                vectors: ritz,
                iterations,
                residual: resid,
                converged: false,
            };
        }
        // Apply A only to the new columns.
        let new_cols = grown.col_block(v.ncols(), grown.ncols());
        let a_new = apply(&new_cols);
        let mut av_grown = Mat::zeros(n, grown.ncols());
        for j in 0..v.ncols() {
            av_grown.col_mut(j).copy_from_slice(av.col(j));
        }
        for j in 0..a_new.ncols() {
            av_grown.col_mut(v.ncols() + j).copy_from_slice(a_new.col(j));
        }
        v = grown;
        av = av_grown;
    }

    LobpcgResult {
        values: theta,
        vectors: ritz,
        iterations,
        residual: best_residual,
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::lobpcg::no_precond;

    fn diag_op(d: &[f64]) -> impl Fn(&Mat) -> Mat + '_ {
        move |x: &Mat| {
            let mut y = x.clone();
            for j in 0..y.ncols() {
                for (i, v) in y.col_mut(j).iter_mut().enumerate() {
                    *v *= d[i];
                }
            }
            y
        }
    }

    #[test]
    fn diagonal_lowest_k() {
        let n = 60;
        let d: Vec<f64> = (0..n).map(|i| 1.0 + 0.3 * i as f64).collect();
        let mut rng = rand::thread_rng();
        let x0 = Mat::random(n, 3, &mut rng);
        let res = davidson(diag_op(&d), no_precond, &x0, DavidsonOptions::default());
        assert!(res.converged, "residual {}", res.residual);
        for (v, dv) in res.values.iter().zip(d.iter()).take(3) {
            assert!((v - dv).abs() < 1e-6);
        }
    }

    #[test]
    fn matches_dense_on_random_symmetric() {
        let mut rng = rand::thread_rng();
        let n = 35;
        let mut a = Mat::random(n, n, &mut rng);
        a.symmetrize();
        let exact = syev(&a);
        let x0 = Mat::random(n, 2, &mut rng);
        let res = davidson(
            |x| matmul(&a, x),
            no_precond,
            &x0,
            DavidsonOptions {
                base: LobpcgOptions { max_iter: 400, tol: 1e-9 },
                max_space: 20,
            },
        );
        assert!(res.converged);
        for i in 0..2 {
            assert!((res.values[i] - exact.values[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn restart_does_not_break_convergence() {
        // Tiny max_space forces frequent restarts.
        let n = 50;
        let d: Vec<f64> = (0..n).map(|i| (i as f64 - 10.0).abs() + 0.5).collect();
        let mut rng = rand::thread_rng();
        let x0 = Mat::random(n, 2, &mut rng);
        let res = davidson(
            diag_op(&d),
            no_precond,
            &x0,
            DavidsonOptions {
                base: LobpcgOptions { max_iter: 500, tol: 1e-8 },
                max_space: 4, // = 2k: restart every iteration
            },
        );
        assert!(res.converged, "residual {}", res.residual);
        let mut sorted = d.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((res.values[0] - sorted[0]).abs() < 1e-6);
    }

    #[test]
    fn preconditioner_helps() {
        let n = 80;
        let d: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let precond = |r: &Mat, theta: &[f64]| {
            let mut w = r.clone();
            for (j, &th) in theta.iter().enumerate().take(w.ncols()) {
                for (i, v) in w.col_mut(j).iter_mut().enumerate() {
                    let den = (d[i] - th).abs().max(0.1);
                    *v /= den;
                }
            }
            w
        };
        let mut rng = rand::thread_rng();
        let x0 = Mat::random(n, 2, &mut rng);
        let plain = davidson(diag_op(&d), no_precond, &x0, DavidsonOptions::default());
        let pre = davidson(diag_op(&d), precond, &x0, DavidsonOptions::default());
        assert!(pre.converged);
        assert!(pre.iterations <= plain.iterations);
    }
}
