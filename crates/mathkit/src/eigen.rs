//! Dense symmetric eigensolver — our stand-in for `ScaLAPACK::SYEVD`.
//!
//! Two classical phases:
//! 1. Householder reduction to symmetric tridiagonal form, accumulating the
//!    orthogonal transformation (EISPACK `tred2`),
//! 2. implicit-shift QL iteration on the tridiagonal matrix, rotating the
//!    accumulated basis so its columns become eigenvectors (EISPACK `tql2`).
//!
//! Cost is the textbook `O(n³)` the paper quotes for dense diagonalization of
//! the `N_cv × N_cv` Casida Hamiltonian — this is exactly the bottleneck the
//! implicit LOBPCG path removes.

use crate::mat::Mat;

/// Eigendecomposition of a real symmetric matrix: `A = V diag(λ) Vᵀ`.
///
/// Eigenvalues are sorted ascending; `vectors.col(i)` belongs to `values[i]`.
pub struct Eigen {
    pub values: Vec<f64>,
    pub vectors: Mat,
}

/// Full eigendecomposition of symmetric `a`. Symmetry is *assumed*; only the
/// lower triangle feeds the reduction (mirroring LAPACK `dsyev('L')`).
pub fn syev(a: &Mat) -> Eigen {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "syev needs a square matrix");
    let mut z = a.clone();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    tred2(&mut z, &mut d, &mut e);
    tql2(&mut z, &mut d, &mut e);
    sort_eigen(&mut d, &mut z);
    Eigen { values: d, vectors: z }
}

/// Householder reduction of `z` (symmetric, order n) to tridiagonal form.
/// On exit `d` holds the diagonal, `e` the subdiagonal (`e[0]` unused),
/// and `z` the accumulated orthogonal transformation.
fn tred2(z: &mut Mat, d: &mut [f64], e: &mut [f64]) {
    let n = z.nrows();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| z[(i, k)].abs()).sum();
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let mut f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                f = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    f += e[j] * z[(i, j)];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let upd = f * e[k] + g * z[(i, k)];
                        z[(j, k)] -= upd;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    // Accumulate transformations.
    for i in 0..n {
        let l = i;
        if d[i] != 0.0 {
            for j in 0..l {
                let mut g = 0.0;
                for k in 0..l {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..l {
                    let upd = g * z[(k, i)];
                    z[(k, j)] -= upd;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..l {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
}

/// Implicit-shift QL iteration on the tridiagonal (`d`, `e`) pair produced by
/// [`tred2`], rotating the columns of `z` into eigenvectors.
fn tql2(z: &mut Mat, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    if n == 0 {
        return;
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find small subdiagonal element.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 50, "tql2 failed to converge after 50 iterations");
            // Form shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0, 1.0);
            let mut p = 0.0;
            let mut broke_early = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    broke_early = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate eigenvector rotation.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if broke_early {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
}

fn sort_eigen(d: &mut [f64], z: &mut Mat) {
    let n = d.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).unwrap());
    let sorted_d: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let sorted_z = z.select_cols(&order);
    d.copy_from_slice(&sorted_d);
    *z = sorted_z;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm_tn, matmul};

    fn residual(a: &Mat, eig: &Eigen) -> f64 {
        // ||A V - V diag(λ)||_max
        let av = matmul(a, &eig.vectors);
        let mut vl = eig.vectors.clone();
        for j in 0..vl.ncols() {
            let lam = eig.values[j];
            for v in vl.col_mut(j) {
                *v *= lam;
            }
        }
        av.max_abs_diff(&vl)
    }

    #[test]
    fn diagonal_matrix() {
        let a = Mat::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0]]);
        let e = syev(&a);
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
        assert!(residual(&a, &e) < 1e-12);
    }

    #[test]
    fn two_by_two_analytic() {
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = syev(&a);
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn random_symmetric_residual_and_orthonormality() {
        let mut rng = rand::thread_rng();
        for &n in &[1usize, 2, 3, 5, 16, 40] {
            let mut a = Mat::random(n, n, &mut rng);
            a.symmetrize();
            let e = syev(&a);
            assert!(residual(&a, &e) < 1e-9 * (n as f64), "n={n}");
            let vtv = gemm_tn(&e.vectors, &e.vectors);
            assert!(vtv.max_abs_diff(&Mat::eye(n)) < 1e-10, "n={n}");
            // ascending
            for w in e.values.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn trace_and_det_invariants() {
        let mut rng = rand::thread_rng();
        let n = 12;
        let mut a = Mat::random(n, n, &mut rng);
        a.symmetrize();
        let e = syev(&a);
        let tr: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((tr - sum).abs() < 1e-10);
    }

    #[test]
    fn degenerate_eigenvalues() {
        // A = I + rank-1; eigenvalues {1 (n-1 times), 1 + n}.
        let n = 6;
        let mut a = Mat::eye(n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] += 1.0;
            }
        }
        let e = syev(&a);
        for i in 0..n - 1 {
            assert!((e.values[i] - 1.0).abs() < 1e-10);
        }
        assert!((e.values[n - 1] - (1.0 + n as f64)).abs() < 1e-10);
        assert!(residual(&a, &e) < 1e-10);
    }

    #[test]
    fn already_tridiagonal() {
        // Known spectrum of the 1-D Laplacian: 2 - 2cos(kπ/(n+1)).
        let n = 10;
        let a = Mat::from_fn(n, n, |i, j| {
            if i == j {
                2.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let e = syev(&a);
        for k in 0..n {
            let exact = 2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n + 1) as f64).cos();
            assert!((e.values[k] - exact).abs() < 1e-10);
        }
    }
}
