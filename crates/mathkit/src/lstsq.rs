//! Least-squares solvers.
//!
//! The ISDF interpolation vectors solve the overdetermined system `Z = Θ C`
//! via the Galerkin condition `Θ = Z Cᵀ (C Cᵀ)⁻¹` (paper Eq. 10). That is a
//! normal-equations solve; we also provide a QR-based path for the
//! ill-conditioned cases exercised in tests.

use crate::chol::solve_spd;
use crate::gemm::{gemm, Transpose};
use crate::mat::Mat;
use crate::qr::qr_householder;

/// Solve `min ‖A x - B‖_F` via normal equations `(AᵀA) X = AᵀB`.
/// Fast and adequate when `A` is well-conditioned (the ISDF Gram matrices are
/// regularized before reaching this point).
pub fn lstsq_normal(a: &Mat, b: &Mat) -> Mat {
    let mut ata = Mat::zeros(a.ncols(), a.ncols());
    gemm(1.0, a, Transpose::Yes, a, Transpose::No, 0.0, &mut ata);
    let mut atb = Mat::zeros(a.ncols(), b.ncols());
    gemm(1.0, a, Transpose::Yes, b, Transpose::No, 0.0, &mut atb);
    // Tikhonov floor keeps near-rank-deficient systems solvable.
    let eps = 1e-12 * (0..ata.nrows()).map(|i| ata[(i, i)]).fold(0.0f64, f64::max).max(1e-300);
    for i in 0..ata.nrows() {
        ata[(i, i)] += eps;
    }
    solve_spd(&ata, &atb).expect("regularized normal equations must be SPD")
}

/// Solve `min ‖A x - B‖_F` via Householder QR (`R X = QᵀB`).
pub fn lstsq_qr(a: &Mat, b: &Mat) -> Mat {
    let (q, r) = qr_householder(a);
    let mut qtb = Mat::zeros(q.ncols(), b.ncols());
    gemm(1.0, &q, Transpose::Yes, b, Transpose::No, 0.0, &mut qtb);
    // Back-substitute R X = QᵀB.
    let n = r.ncols().min(r.nrows());
    let mut x = Mat::zeros(a.ncols(), b.ncols());
    for j in 0..b.ncols() {
        for i in (0..n).rev() {
            let mut s = qtb[(i, j)];
            for k in (i + 1)..n {
                s -= r[(i, k)] * x[(k, j)];
            }
            let rii = r[(i, i)];
            x[(i, j)] = if rii.abs() > 1e-300 { s / rii } else { 0.0 };
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    #[test]
    fn exact_system_recovered() {
        let mut rng = rand::thread_rng();
        let a = Mat::random(15, 4, &mut rng);
        let x_true = Mat::random(4, 2, &mut rng);
        let b = matmul(&a, &x_true);
        assert!(lstsq_normal(&a, &b).max_abs_diff(&x_true) < 1e-8);
        assert!(lstsq_qr(&a, &b).max_abs_diff(&x_true) < 1e-9);
    }

    #[test]
    fn residual_orthogonal_to_range() {
        // The LS residual must satisfy Aᵀ(Ax - b) = 0.
        let mut rng = rand::thread_rng();
        let a = Mat::random(20, 5, &mut rng);
        let b = Mat::random(20, 3, &mut rng);
        for x in [lstsq_normal(&a, &b), lstsq_qr(&a, &b)] {
            let mut res = matmul(&a, &x);
            res.axpy(-1.0, &b);
            let mut atr = Mat::zeros(5, 3);
            gemm(1.0, &a, Transpose::Yes, &res, Transpose::No, 0.0, &mut atr);
            assert!(atr.norm_max() < 1e-8, "normal equations violated: {}", atr.norm_max());
        }
    }

    #[test]
    fn qr_and_normal_agree() {
        let mut rng = rand::thread_rng();
        let a = Mat::random(30, 6, &mut rng);
        let b = Mat::random(30, 2, &mut rng);
        let x1 = lstsq_normal(&a, &b);
        let x2 = lstsq_qr(&a, &b);
        assert!(x1.max_abs_diff(&x2) < 1e-7);
    }
}
