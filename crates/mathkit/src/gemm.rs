//! BLIS-style packed/tiled GEMM engine and friends.
//!
//! The paper leans on MKL `dgemm` for the face-splitting products and the
//! `V_Hxc = P_vcᵀ (f_Hxc P_vc)` contractions. This module provides the same
//! role: a cache-blocked, packed, register-tiled GEMM in the style of BLIS
//! (Van Zee & van de Geijn, TOMS 2015), parallelized with Rayon over 2-D
//! macro-tiles of `C` — the same shape of parallelism the row-block data
//! distribution in the paper exploits.
//!
//! Structure (classic five-loop blocking):
//!
//! ```text
//! for jc in 0..n step NC            // C column panels
//!   for pc in 0..k step KC          // rank-KC updates
//!     pack op(B)[pc.., jc..]  →  KC × NC panel of NR-wide row strips
//!     for ic in 0..m step MC        // C row panels
//!       pack op(A)[ic.., pc..] →  MC × KC panel of MR-wide column strips
//!       for jr, ir: 8×4 microkernel over the KC strip, C[tile] += alpha·acc
//! ```
//!
//! Packing absorbs all four transpose cases up front, so the microkernel
//! always sees two contiguous streams regardless of `op(A)`/`op(B)` — and
//! the register tile is computed by the explicit AVX2 microkernels in
//! [`crate::simd`] (8×4 and a wider 8×8 variant, selected by output width),
//! with a bit-compatible scalar fallback chosen by one-time runtime CPU
//! dispatch. The pc/ic/jc loops are flattened into a Rayon parallel iterator
//! over disjoint `MC × NC` tiles of `C`, so both the M and N dimensions are
//! partitioned (not just single columns).
//!
//! Skinny outputs (`n ≤ MR`, the implicit-Hamiltonian `H·X` shape with a
//! handful of excitation states) take a dedicated strip-tiled path: the C
//! strip rides in registers over the *full* shared dimension, `op(B)` is
//! staged into one small `k × n` buffer, and `op(A)` is either read in
//! place (untransposed — panel-blocked so the strided strip reads stay
//! cache-resident) or packed once into MR-row strips (transposed), so every
//! A element is read exactly once from DRAM and the fold per output element
//! stays single-pass — bitwise identical to the serial kernels.
//!
//! Tiny inputs (Rayleigh–Ritz blocks, 3×3 cell algebra) skip packing
//! entirely through a serial small-size fast path.

use crate::mat::Mat;
use crate::simd::{self, Kernel};
use rayon::prelude::*;

/// Whether an operand is used as-is or transposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transpose {
    No,
    Yes,
}

/// Microkernel register tile: MR rows × NR columns of C. NR8 is the wider
/// 8×8 tile used when the output has enough columns to fill it.
const MR: usize = 8;
const NR: usize = 4;
const NR8: usize = 8;
/// Cache blocking: op(A) panels are MC×KC (L2-resident), op(B) panels KC×NC.
const MC: usize = 128;
const NC: usize = 256;
const KC: usize = 512;
/// Flop count (2·m·n·k) below which packing overhead beats the blocked path.
const SMALL_FLOPS: usize = 1 << 17;
/// Panel budget (in doubles, ≈1 MiB) for the direct skinny-axpy path: the
/// strip sweep reads one cache line per A column at stride `lda`, so without
/// blocking a tall-`k` sweep touches a new page per load (no prefetch, TLB
/// misses on every strip). Blocking the shared dimension to panels of
/// `DIRECT_PANEL / lda` columns keeps the panel L2/TLB-resident: the first
/// strip streams it from DRAM, the rest re-read it from cache.
const DIRECT_PANEL: usize = 1 << 17;

/// `C = alpha * op(A) * op(B) + beta * C`.
///
/// Shapes (after `op`): `op(A)` is `m × k`, `op(B)` is `k × n`, `C` is `m × n`.
pub fn gemm(
    alpha: f64,
    a: &Mat,
    ta: Transpose,
    b: &Mat,
    tb: Transpose,
    beta: f64,
    c: &mut Mat,
) {
    let (m, ka) = op_shape(a, ta);
    let (kb, n) = {
        let (k, n) = op_shape(b, tb);
        (k, n)
    };
    assert_eq!(ka, kb, "inner dimensions must agree");
    assert_eq!(c.shape(), (m, n), "output shape mismatch");
    let k = ka;

    if m == 0 || n == 0 {
        return;
    }
    obskit::record_gemm_shape(m, n, k);
    if k == 0 || alpha == 0.0 {
        scale_slice(c.as_mut_slice(), beta);
        return;
    }

    let av = View { data: a.as_slice(), nrows: a.nrows(), trans: ta };
    let bv = View { data: b.as_slice(), nrows: b.nrows(), trans: tb };
    let kernel = simd::active_kernel();
    if 2 * m * n * k < SMALL_FLOPS {
        obskit::record_kernel_dispatch("gemm.small");
        gemm_small(alpha, &av, &bv, beta, c.as_mut_slice(), m, n, k);
    } else if n <= MR && m >= 3 * MR {
        // The implicit-H·X family: a tall `op(A)` against at most MR columns.
        // Keep the whole C strip in registers and sweep A in one pass.
        // Untransposed A is read in place (contiguous 8-row segments of each
        // column — "direct"); transposed A is packed once over the full k
        // ("packed") so the dot fold can vectorize across rows. At large k
        // these shapes are DRAM-bound, and skipping the A pack is what keeps
        // the single-stream traffic at parity with the reference loop.
        obskit::record_kernel_dispatch(match (ta, kernel) {
            (Transpose::No, Kernel::Avx2) => "gemm.skinny_direct.avx2",
            (Transpose::No, Kernel::Scalar) => "gemm.skinny_direct.scalar",
            (Transpose::Yes, Kernel::Avx2) => "gemm.skinny_packed.avx2",
            (Transpose::Yes, Kernel::Scalar) => "gemm.skinny_packed.scalar",
        });
        gemm_skinny_packed(kernel, alpha, &av, &bv, beta, c.as_mut_slice(), m, n, k);
    } else if n < 3 * NR || m < 3 * MR {
        // Skinny output: every packed element would be reused fewer than ~3
        // times, so packing overhead beats the microkernel win. Column-
        // parallel axpy/dot loops instead (LOBPCG `S·coef` blocks and short
        // outputs land here).
        obskit::record_kernel_dispatch("gemm.skinny_cols");
        gemm_skinny(alpha, &av, &bv, beta, c.as_mut_slice(), m, n, k);
    } else {
        obskit::record_kernel_dispatch(match (blocked_nr(n), kernel) {
            (NR8, Kernel::Avx2) => "gemm.blocked.8x8.avx2",
            (NR8, Kernel::Scalar) => "gemm.blocked.8x8.scalar",
            (_, Kernel::Avx2) => "gemm.blocked.8x4.avx2",
            (_, Kernel::Scalar) => "gemm.blocked.8x4.scalar",
        });
        gemm_blocked(alpha, &av, &bv, beta, c.as_mut_slice(), m, n, k);
    }
}

/// Register-tile width for the blocked path: the 8×8 microkernel needs at
/// least two full tiles of columns to pay for its wider B packing.
#[inline]
fn blocked_nr(n: usize) -> usize {
    if n >= 2 * NR8 {
        NR8
    } else {
        NR
    }
}

/// Convenience: `C = AᵀB` (the dominant contraction in `V_Hxc` assembly).
pub fn gemm_tn(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.ncols(), b.ncols());
    gemm(1.0, a, Transpose::Yes, b, Transpose::No, 0.0, &mut c);
    c
}

/// Convenience: `C = A·B`.
pub fn matmul(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.nrows(), b.ncols());
    gemm(1.0, a, Transpose::No, b, Transpose::No, 0.0, &mut c);
    c
}

/// Symmetric rank-k update `C = alpha·AᵀA` (Gram matrix). Only the lower
/// triangle of macro-tiles is computed through the packed engine; the upper
/// triangle is mirrored afterwards.
pub fn syrk_tn_scaled(alpha: f64, a: &Mat) -> Mat {
    let n = a.ncols();
    let k = a.nrows();
    let av = View { data: a.as_slice(), nrows: a.nrows(), trans: Transpose::Yes };
    let bv = View { data: a.as_slice(), nrows: a.nrows(), trans: Transpose::No };
    syrk_engine(alpha, &av, &bv, n, k)
}

/// Symmetric rank-k update `C = AᵀA` (Gram matrix), exploiting symmetry.
pub fn syrk_tn(a: &Mat) -> Mat {
    syrk_tn_scaled(1.0, a)
}

/// Symmetric rank-k update `C = alpha·A·Aᵀ` (the `Ψ̂ Ψ̂ᵀ` factors of the ISDF
/// Gram pair).
pub fn syrk_nt_scaled(alpha: f64, a: &Mat) -> Mat {
    let n = a.nrows();
    let k = a.ncols();
    let av = View { data: a.as_slice(), nrows: a.nrows(), trans: Transpose::No };
    let bv = View { data: a.as_slice(), nrows: a.nrows(), trans: Transpose::Yes };
    syrk_engine(alpha, &av, &bv, n, k)
}

/// Symmetric rank-k update `C = A·Aᵀ`.
pub fn syrk_nt(a: &Mat) -> Mat {
    syrk_nt_scaled(1.0, a)
}

/// `y = alpha * A x + beta * y`, parallel over row chunks of `y`.
pub fn gemv(alpha: f64, a: &Mat, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(a.ncols(), x.len());
    assert_eq!(a.nrows(), y.len());
    let nrows = a.nrows();
    let a_data = a.as_slice();
    obskit::record_kernel_dispatch(match simd::active_kernel() {
        Kernel::Avx2 => "gemv.avx2",
        Kernel::Scalar => "gemv.scalar",
    });
    let body = |i0: usize, yc: &mut [f64]| {
        scale_slice(yc, beta);
        if alpha == 0.0 {
            return;
        }
        for (l, &xl) in x.iter().enumerate() {
            let axl = alpha * xl;
            if axl == 0.0 {
                continue;
            }
            let col = &a_data[l * nrows + i0..l * nrows + i0 + yc.len()];
            simd::axpy(axl, col, yc);
        }
    };
    // Chunk rows so each Rayon worker owns a contiguous slab of y and streams
    // the matching slab of every A column.
    const GEMV_CHUNK: usize = 2048;
    if nrows * a.ncols() < SMALL_FLOPS || nrows <= GEMV_CHUNK {
        body(0, y);
    } else {
        y.par_chunks_mut(GEMV_CHUNK)
            .enumerate()
            .for_each(|(ci, yc)| body(ci * GEMV_CHUNK, yc));
    }
}

/// Shape of `op(X)`.
#[inline]
fn op_shape(x: &Mat, t: Transpose) -> (usize, usize) {
    match t {
        Transpose::No => (x.nrows(), x.ncols()),
        Transpose::Yes => (x.ncols(), x.nrows()),
    }
}

/// `s *= beta` with the BLAS convention that `beta == 0` overwrites NaNs.
fn scale_slice(s: &mut [f64], beta: f64) {
    if beta == 0.0 {
        s.fill(0.0);
    } else if beta != 1.0 {
        for v in s.iter_mut() {
            *v *= beta;
        }
    }
}

/// A transpose-aware read-only view of a column-major operand.
#[derive(Clone, Copy)]
struct View<'a> {
    data: &'a [f64],
    nrows: usize,
    trans: Transpose,
}

impl View<'_> {
    /// `op(X)[i, l]`.
    #[inline(always)]
    fn get(&self, i: usize, l: usize) -> f64 {
        match self.trans {
            Transpose::No => self.data[i + l * self.nrows],
            Transpose::Yes => self.data[l + i * self.nrows],
        }
    }
}

/// Serial fast path: seed-style column-wise loops, no packing, no Rayon.
#[allow(clippy::too_many_arguments)]
fn gemm_small(
    alpha: f64,
    av: &View,
    bv: &View,
    beta: f64,
    c: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
) {
    scale_slice(c, beta);
    for j in 0..n {
        let c_col = &mut c[j * m..(j + 1) * m];
        match (av.trans, bv.trans) {
            (Transpose::No, Transpose::No) => {
                let b_col = &bv.data[j * bv.nrows..j * bv.nrows + k];
                for (l, &bl) in b_col.iter().enumerate() {
                    let blj = alpha * bl;
                    if blj == 0.0 {
                        continue;
                    }
                    let a_col = &av.data[l * av.nrows..l * av.nrows + m];
                    simd::axpy(blj, a_col, c_col);
                }
            }
            (Transpose::Yes, Transpose::No) => {
                let b_col = &bv.data[j * bv.nrows..j * bv.nrows + k];
                for (i, cv) in c_col.iter_mut().enumerate() {
                    let a_col = &av.data[i * av.nrows..i * av.nrows + k];
                    let mut s = 0.0;
                    for (a, b) in a_col.iter().zip(b_col.iter()) {
                        s += a * b;
                    }
                    *cv += alpha * s;
                }
            }
            (Transpose::No, Transpose::Yes) => {
                for l in 0..k {
                    let blj = alpha * bv.get(l, j);
                    if blj == 0.0 {
                        continue;
                    }
                    let a_col = &av.data[l * av.nrows..l * av.nrows + m];
                    simd::axpy(blj, a_col, c_col);
                }
            }
            (Transpose::Yes, Transpose::Yes) => {
                for (i, cv) in c_col.iter_mut().enumerate() {
                    let a_col = &av.data[i * av.nrows..i * av.nrows + k];
                    let mut s = 0.0;
                    for (l, &a) in a_col.iter().enumerate() {
                        s += a * bv.get(l, j);
                    }
                    *cv += alpha * s;
                }
            }
        }
    }
}

/// Unpacked column-parallel path for skinny outputs: each worker owns one
/// C column and runs the serial kernels on it (`gemm_small` with `n = 1`,
/// the B view offset to the matching column).
#[allow(clippy::too_many_arguments)]
fn gemm_skinny(
    alpha: f64,
    av: &View,
    bv: &View,
    beta: f64,
    c: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
) {
    debug_assert_eq!(c.len(), m * n);
    c.par_chunks_mut(m).enumerate().for_each(|(j, col)| {
        let boff = match bv.trans {
            Transpose::No => j * bv.nrows,
            Transpose::Yes => j,
        };
        let bj = View { data: &bv.data[boff..], nrows: bv.nrows, trans: bv.trans };
        gemm_small(alpha, av, &bj, beta, col, m, 1, k);
    });
}

/// Strip-tiled path for skinny outputs (`n ≤ MR`, tall `op(A)`): the whole C
/// strip of `n` columns rides in one register tile per MR rows, swept over
/// the full shared dimension in a single pass (no KC split — the per-element
/// fold stays bitwise identical to the serial kernels), with `op(B)` staged
/// into one `k × n` column-major buffer.
///
/// `op(A)` handling depends on the fold:
/// * **Axpy fold** (`A` untransposed): read A in place — each strip's MR rows
///   are contiguous within every column of column-major A, so the tile just
///   walks the column stride `lda`. No pack at all; at large `k` the A pack
///   would *triple* memory traffic (write + re-read 8·k·strips doubles the
///   single streaming read) and these shapes are DRAM-bound, which is exactly
///   how the `implicit_512x4096_x_4096x8` benchmark shape regressed below the
///   reference loop before this path existed.
/// * **Dot fold** (`A` transposed): pack once into row-interleaved `MR × k`
///   strips — the vector kernel needs one `l` slice across 8 rows per load,
///   which transposed A cannot provide in place.
///
/// This is the shape of the paper's implicit `H·X` apply (`N_mu × N_cv`
/// operators against `k ≤ 8` excitation states), where the column-parallel
/// fallback used to re-read A once per column.
#[allow(clippy::too_many_arguments)]
fn gemm_skinny_packed(
    kernel: Kernel,
    alpha: f64,
    av: &View,
    bv: &View,
    beta: f64,
    c: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
) {
    debug_assert!((1..=MR).contains(&n));
    let strips = m.div_ceil(MR);
    let dot_fold = av.trans == Transpose::Yes;
    // Reuse pack scratch across calls: a fresh zeroed Vec costs more than the
    // whole tile sweep at these skinny shapes (page zeroing dominates).
    // `take`/`set` instead of borrowing keeps re-entrant calls on the same
    // thread (Rayon work-stealing) safe — they just allocate fresh.
    let (mut apack, mut bpack) = SKINNY_SCRATCH.take();
    let a_need = if dot_fold { strips * MR * k } else { 0 };
    if apack.len() < a_need {
        apack.resize(a_need, 0.0);
    }
    let b_need = k * n;
    if bpack.len() < b_need {
        bpack.resize(b_need, 0.0);
    }
    apack[..a_need]
        .par_chunks_mut(MR * k)
        .enumerate()
        .for_each(|(s, buf)| pack_a_strip(av, s * MR, m, 0, k, buf));
    for j in 0..n {
        for (l, d) in bpack[j * k..(j + 1) * k].iter_mut().enumerate() {
            *d = bv.get(l, j);
        }
    }
    scale_slice(c, beta);
    let cptr = CPtr(c.as_mut_ptr());
    let lda = av.nrows;
    let bp = &bpack[..b_need];
    if dot_fold {
        (0..strips).into_par_iter().for_each(|s| {
            let it = s * MR;
            let mr_eff = MR.min(m - it);
            let ap = &apack[s * MR * k..(s + 1) * MR * k];
            // SAFETY: strips own disjoint row ranges `[it, it + mr_eff)` of
            // every C column; the tile kernels only touch those rows.
            unsafe {
                let cbase = cptr.0.add(it);
                simd::skinny_dot_tile(kernel, k, ap, bp, n, mr_eff, alpha, cbase, m);
            }
        });
    } else {
        // Direct-from-A sweep, panel-blocked over the shared dimension (see
        // DIRECT_PANEL). C accumulates panel by panel in increasing `l`, so
        // the per-element fold order — and hence bitwise identity with the
        // serial kernels — is unchanged; the register tile is simply stored
        // and reloaded between panels (exact round trips).
        let kc = (DIRECT_PANEL / lda).max(MR).min(k);
        let mut l0 = 0;
        while l0 < k {
            let kc_eff = kc.min(k - l0);
            (0..strips).into_par_iter().for_each(|s| {
                let it = s * MR;
                let mr_eff = MR.min(m - it);
                // Direct window into A: rows [it, it + mr_eff) of columns
                // [l0, l0 + kc_eff), stride lda. The slice ends exactly at
                // the window's last element, so full-MR vector loads stay
                // in bounds.
                let ap = &av.data[l0 * lda + it..(l0 + kc_eff - 1) * lda + it + mr_eff];
                // SAFETY: same disjoint-strip ownership of C rows as above.
                unsafe {
                    let cbase = cptr.0.add(it);
                    simd::skinny_axpy_tile(
                        kernel,
                        kc_eff,
                        ap,
                        lda,
                        &bp[l0..],
                        k,
                        n,
                        mr_eff,
                        alpha,
                        cbase,
                        m,
                    );
                }
            });
            l0 += kc_eff;
        }
    }
    SKINNY_SCRATCH.set((apack, bpack));
}

std::thread_local! {
    /// Pack scratch for [`gemm_skinny_packed`], reused across calls on each
    /// thread (grown monotonically, never shrunk).
    static SKINNY_SCRATCH: std::cell::Cell<(Vec<f64>, Vec<f64>)> =
        const { std::cell::Cell::new((Vec::new(), Vec::new())) };
}

/// Raw pointer into C, shareable across Rayon workers writing disjoint tiles.
#[derive(Clone, Copy)]
struct CPtr(*mut f64);
unsafe impl Send for CPtr {}
unsafe impl Sync for CPtr {}

/// Packed/tiled path: pre-pack every (pc, ic) block of `op(A)` and every
/// (pc, jc) block of `op(B)`, then drive the microkernel over disjoint
/// `MC × NC` tiles of C in parallel.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked(
    alpha: f64,
    av: &View,
    bv: &View,
    beta: f64,
    c: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
) {
    if c.len() >= 1 << 16 {
        c.par_chunks_mut(m.max(4096)).for_each(|chunk| scale_slice(chunk, beta));
    } else {
        scale_slice(c, beta);
    }

    let kernel = simd::active_kernel();
    let nr = blocked_nr(n);
    let n_ic = m.div_ceil(MC);
    let n_jc = n.div_ceil(NC);
    let n_pc = k.div_ceil(KC);

    // Packing is itself parallel (one block per task). Blocks are stored as
    // independent buffers so edge blocks carry no padding waste beyond the
    // MR/NR round-up inside the panel.
    let packed_a: Vec<Vec<f64>> = (0..n_pc * n_ic)
        .into_par_iter()
        .map(|idx| {
            let (pc, ic) = (idx / n_ic, idx % n_ic);
            let p0 = pc * KC;
            let i0 = ic * MC;
            pack_a(av, i0, MC.min(m - i0), p0, KC.min(k - p0))
        })
        .collect();
    let packed_b: Vec<Vec<f64>> = (0..n_pc * n_jc)
        .into_par_iter()
        .map(|idx| {
            let (pc, jc) = (idx / n_jc, idx % n_jc);
            let p0 = pc * KC;
            let j0 = jc * NC;
            pack_b(bv, p0, KC.min(k - p0), j0, NC.min(n - j0), nr)
        })
        .collect();

    let cptr = CPtr(c.as_mut_ptr());
    (0..n_ic * n_jc).into_par_iter().for_each(|t| {
        let (jc, ic) = (t / n_ic, t % n_ic);
        let i0 = ic * MC;
        let j0 = jc * NC;
        let mc = MC.min(m - i0);
        let nc = NC.min(n - j0);
        for pc in 0..n_pc {
            let kc = KC.min(k - pc * KC);
            let ap = &packed_a[pc * n_ic + ic];
            let bp = &packed_b[pc * n_jc + jc];
            // SAFETY: tiles (i0..i0+mc, j0..j0+nc) are disjoint across tasks.
            unsafe { macro_tile(kernel, nr, alpha, ap, bp, kc, mc, nc, cptr, m, i0, j0) };
        }
    });
}

/// Pack one MR-row strip starting at op(A) row `ib` (rows clipped to
/// `i_max`) × cols `[p0, p0+kc)` into `buf` (`MR·kc`, pre-zeroed): element
/// `(i, l)` lands at `l·MR + i`. Padding rows stay zero.
fn pack_a_strip(av: &View, ib: usize, i_max: usize, p0: usize, kc: usize, buf: &mut [f64]) {
    let mr_eff = MR.min(i_max - ib);
    // Partial strips zero their padding lanes explicitly so the buffer does
    // not have to be pre-zeroed (the skinny path reuses scratch buffers).
    if mr_eff < MR {
        for l in 0..kc {
            buf[l * MR + mr_eff..(l + 1) * MR].fill(0.0);
        }
    }
    match av.trans {
        Transpose::No => {
            for l in 0..kc {
                let col = &av.data[(p0 + l) * av.nrows + ib..];
                let dst = &mut buf[l * MR..l * MR + mr_eff];
                dst.copy_from_slice(&col[..mr_eff]);
            }
        }
        Transpose::Yes => {
            // kc-outer keeps both sides streaming: mr_eff sequential
            // read cursors (one per op(A) row = stored column) advance
            // in lockstep while writes stay contiguous.
            for l in 0..kc {
                let dst = &mut buf[l * MR..l * MR + mr_eff];
                for (i, d) in dst.iter_mut().enumerate() {
                    *d = av.data[(ib + i) * av.nrows + p0 + l];
                }
            }
        }
    }
}

/// Pack rows `[i0, i0+mc)` × cols `[p0, p0+kc)` of `op(A)` into MR-row
/// micropanels: element `(i, l)` of strip `s` lands at `s·MR·kc + l·MR + i`.
/// Partial strips are zero-padded so the microkernel never branches.
fn pack_a(av: &View, i0: usize, mc: usize, p0: usize, kc: usize) -> Vec<f64> {
    let strips = mc.div_ceil(MR);
    let mut buf = vec![0.0; strips * MR * kc];
    for (s, strip) in buf.chunks_mut(MR * kc).enumerate() {
        pack_a_strip(av, i0 + s * MR, i0 + mc, p0, kc, strip);
    }
    buf
}

/// Pack rows `[p0, p0+kc)` × cols `[j0, j0+nc)` of `op(B)` into `nr`-column
/// micropanels: element `(l, j)` of strip `s` lands at `s·nr·kc + l·nr + j`.
fn pack_b(bv: &View, p0: usize, kc: usize, j0: usize, nc: usize, nr: usize) -> Vec<f64> {
    let strips = nc.div_ceil(nr);
    let mut buf = vec![0.0; strips * nr * kc];
    for s in 0..strips {
        let base = s * nr * kc;
        let jb = j0 + s * nr;
        let nr_eff = nr.min(j0 + nc - jb);
        match bv.trans {
            Transpose::No => {
                // kc-outer for the same streaming-access reason as pack_a.
                for l in 0..kc {
                    let dst = &mut buf[base + l * nr..base + l * nr + nr_eff];
                    for (j, d) in dst.iter_mut().enumerate() {
                        *d = bv.data[(jb + j) * bv.nrows + p0 + l];
                    }
                }
            }
            Transpose::Yes => {
                for l in 0..kc {
                    let col = &bv.data[(p0 + l) * bv.nrows + jb..];
                    let dst = &mut buf[base + l * nr..base + l * nr + nr_eff];
                    dst.copy_from_slice(&col[..nr_eff]);
                }
            }
        }
    }
    buf
}

/// One MC×NC tile of C updated from a packed A panel and packed B panel:
/// `C[i0.., j0..] += alpha · op(A)_panel · op(B)_panel`. The register tile
/// itself is computed by the dispatched microkernel in [`crate::simd`]
/// (`nr` ∈ {4, 8} selects the 8×4 or 8×8 variant; both packed panels must
/// have been laid out with the same `nr`).
///
/// # Safety
/// The caller must guarantee exclusive access to the tile
/// `(i0..i0+mc) × (j0..j0+nc)` of the `ldc`-row column-major buffer `c`.
#[allow(clippy::too_many_arguments)]
unsafe fn macro_tile(
    kernel: Kernel,
    nr: usize,
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    kc: usize,
    mc: usize,
    nc: usize,
    c: CPtr,
    ldc: usize,
    i0: usize,
    j0: usize,
) {
    let m_strips = mc.div_ceil(MR);
    let n_strips = nc.div_ceil(nr);
    let mut acc = [0.0f64; MR * NR8];
    for js in 0..n_strips {
        let bstrip = &bp[js * nr * kc..(js + 1) * nr * kc];
        let jt = js * nr;
        let nr_eff = nr.min(nc - jt);
        for is in 0..m_strips {
            let astrip = &ap[is * MR * kc..(is + 1) * MR * kc];
            let it = is * MR;
            let mr_eff = MR.min(mc - it);
            simd::microkernel_f64(kernel, nr, kc, astrip, bstrip, &mut acc);
            for (j, accj) in acc.chunks_exact(MR).enumerate().take(nr_eff) {
                let base = c.0.add((j0 + jt + j) * ldc + i0 + it);
                for (i, &v) in accj.iter().enumerate().take(mr_eff) {
                    *base.add(i) += alpha * v;
                }
            }
        }
    }
}

/// Shared engine for both SYRK flavours: `C = alpha·op(A)·op(B)` where the
/// product is symmetric by construction. Macro-tiles strictly above the
/// diagonal are skipped; the lower triangle is mirrored up at the end.
fn syrk_engine(alpha: f64, av: &View, bv: &View, n: usize, k: usize) -> Mat {
    let mut c = Mat::zeros(n, n);
    if n == 0 {
        return c;
    }
    if k == 0 || alpha == 0.0 {
        return c;
    }
    if 2 * n * n * k < SMALL_FLOPS {
        // Serial: lower-triangle dot products, then mirror.
        {
            let cs = c.as_mut_slice();
            for j in 0..n {
                for i in j..n {
                    let mut s = 0.0;
                    for l in 0..k {
                        s += av.get(i, l) * bv.get(l, j);
                    }
                    cs[i + j * n] = alpha * s;
                }
            }
        }
        mirror_lower_to_upper(&mut c);
        return c;
    }

    let kernel = simd::active_kernel();
    let nr = blocked_nr(n);
    let n_blk = n.div_ceil(MC.min(NC));
    let blk = MC.min(NC);
    let n_pc = k.div_ceil(KC);
    let packed_a: Vec<Vec<f64>> = (0..n_pc * n_blk)
        .into_par_iter()
        .map(|idx| {
            let (pc, ic) = (idx / n_blk, idx % n_blk);
            let p0 = pc * KC;
            let i0 = ic * blk;
            pack_a(av, i0, blk.min(n - i0), p0, KC.min(k - p0))
        })
        .collect();
    let packed_b: Vec<Vec<f64>> = (0..n_pc * n_blk)
        .into_par_iter()
        .map(|idx| {
            let (pc, jc) = (idx / n_blk, idx % n_blk);
            let p0 = pc * KC;
            let j0 = jc * blk;
            pack_b(bv, p0, KC.min(k - p0), j0, blk.min(n - j0), nr)
        })
        .collect();

    // Tiles on or below the block diagonal only.
    let tiles: Vec<(usize, usize)> =
        (0..n_blk).flat_map(|jc| (jc..n_blk).map(move |ic| (ic, jc))).collect();
    let cptr = CPtr(c.as_mut_slice().as_mut_ptr());
    tiles.par_iter().for_each(|&(ic, jc)| {
        let i0 = ic * blk;
        let j0 = jc * blk;
        let mc = blk.min(n - i0);
        let nc = blk.min(n - j0);
        for pc in 0..n_pc {
            let kc = KC.min(k - pc * KC);
            let ap = &packed_a[pc * n_blk + ic];
            let bp = &packed_b[pc * n_blk + jc];
            // SAFETY: each (ic ≥ jc) tile is visited by exactly one task.
            unsafe { macro_tile(kernel, nr, alpha, ap, bp, kc, mc, nc, cptr, n, i0, j0) };
        }
    });
    mirror_lower_to_upper(&mut c);
    c
}

/// Copy the strict lower triangle onto the strict upper triangle.
fn mirror_lower_to_upper(c: &mut Mat) {
    let n = c.nrows();
    for j in 0..n {
        for i in j + 1..n {
            c[(j, i)] = c[(i, j)];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fixed-seed RNG so failures reproduce exactly across runs and hosts.
    fn test_rng() -> rand::rngs::StdRng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(0x9e3779b97f4a7c15)
    }

    fn naive_mul(a: &Mat, b: &Mat) -> Mat {
        let mut c = Mat::zeros(a.nrows(), b.ncols());
        for i in 0..a.nrows() {
            for j in 0..b.ncols() {
                let mut s = 0.0;
                for l in 0..a.ncols() {
                    s += a[(i, l)] * b[(l, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    #[test]
    fn gemm_nn_matches_naive() {
        let mut rng = test_rng();
        let a = Mat::random(17, 9, &mut rng);
        let b = Mat::random(9, 13, &mut rng);
        let c = matmul(&a, &b);
        assert!(c.max_abs_diff(&naive_mul(&a, &b)) < 1e-12);
    }

    #[test]
    fn gemm_tn_matches_naive() {
        let mut rng = test_rng();
        let a = Mat::random(23, 7, &mut rng);
        let b = Mat::random(23, 5, &mut rng);
        let c = gemm_tn(&a, &b);
        assert!(c.max_abs_diff(&naive_mul(&a.transpose(), &b)) < 1e-12);
    }

    #[test]
    fn gemm_nt_and_tt() {
        let mut rng = test_rng();
        let a = Mat::random(6, 8, &mut rng);
        let b = Mat::random(10, 8, &mut rng);
        let mut c = Mat::zeros(6, 10);
        gemm(1.0, &a, Transpose::No, &b, Transpose::Yes, 0.0, &mut c);
        assert!(c.max_abs_diff(&naive_mul(&a, &b.transpose())) < 1e-12);

        let e = Mat::random(10, 6, &mut rng);
        let mut d = Mat::zeros(8, 10);
        gemm(1.0, &a, Transpose::Yes, &e, Transpose::Yes, 0.0, &mut d);
        assert!(d.max_abs_diff(&naive_mul(&a.transpose(), &e.transpose())) < 1e-12);
    }

    #[test]
    fn gemm_alpha_beta_accumulate() {
        let a = Mat::eye(3);
        let b = Mat::from_fn(3, 3, |i, j| (i + j) as f64);
        let mut c = Mat::eye(3);
        gemm(2.0, &a, Transpose::No, &b, Transpose::No, 3.0, &mut c);
        // C = 2*B + 3*I
        assert_eq!(c[(0, 0)], 3.0);
        assert_eq!(c[(1, 2)], 6.0);
        assert_eq!(c[(2, 2)], 11.0);
    }

    #[test]
    fn blocked_path_matches_naive_all_transposes() {
        // Sizes chosen to exceed SMALL_FLOPS and exercise edge strips
        // (m, n not multiples of MR/NR; k not a multiple of KC).
        let mut rng = test_rng();
        let (m, n, k) = (77, 45, 41);
        for (ta, tb) in [
            (Transpose::No, Transpose::No),
            (Transpose::Yes, Transpose::No),
            (Transpose::No, Transpose::Yes),
            (Transpose::Yes, Transpose::Yes),
        ] {
            let a = match ta {
                Transpose::No => Mat::random(m, k, &mut rng),
                Transpose::Yes => Mat::random(k, m, &mut rng),
            };
            let b = match tb {
                Transpose::No => Mat::random(k, n, &mut rng),
                Transpose::Yes => Mat::random(n, k, &mut rng),
            };
            let av = View { data: a.as_slice(), nrows: a.nrows(), trans: ta };
            let bv = View { data: b.as_slice(), nrows: b.nrows(), trans: tb };
            let mut c = Mat::zeros(m, n);
            gemm_blocked(1.0, &av, &bv, 0.0, c.as_mut_slice(), m, n, k);
            let a_eff = if ta == Transpose::Yes { a.transpose() } else { a.clone() };
            let b_eff = if tb == Transpose::Yes { b.transpose() } else { b.clone() };
            assert!(
                c.max_abs_diff(&naive_mul(&a_eff, &b_eff)) < 1e-11,
                "({ta:?},{tb:?}) mismatch"
            );
        }
    }

    #[test]
    fn blocked_spans_multiple_panels() {
        // Cross every blocking boundary: m > MC, n > NC, k > KC.
        let mut rng = test_rng();
        let (m, n, k) = (MC + 13, NC + 7, KC + 5);
        let a = Mat::random(m, k, &mut rng);
        let b = Mat::random(k, n, &mut rng);
        let c = matmul(&a, &b);
        let reference = naive_mul(&a, &b);
        assert!(c.max_abs_diff(&reference) < 1e-9 * (k as f64));
    }

    #[test]
    fn syrk_is_gram() {
        let mut rng = test_rng();
        let a = Mat::random(14, 6, &mut rng);
        let g = syrk_tn(&a);
        assert!(g.max_abs_diff(&gemm_tn(&a, &a)) < 1e-12);
        // symmetric
        assert!(g.max_abs_diff(&g.transpose()) < 1e-14);
    }

    #[test]
    fn syrk_blocked_matches_gemm() {
        let mut rng = test_rng();
        // Big enough for the tiled path, non-multiple of the block size.
        let a = Mat::random(500, 2 * MC + 11, &mut rng);
        let g = syrk_tn(&a);
        assert!(g.max_abs_diff(&gemm_tn(&a, &a)) < 1e-10);
        assert!(g.max_abs_diff(&g.transpose()) == 0.0, "exact symmetry by mirroring");
    }

    #[test]
    fn syrk_nt_is_outer_gram() {
        let mut rng = test_rng();
        let a = Mat::random(9, 17, &mut rng);
        let g = syrk_nt(&a);
        let mut expect = Mat::zeros(9, 9);
        gemm(1.0, &a, Transpose::No, &a, Transpose::Yes, 0.0, &mut expect);
        assert!(g.max_abs_diff(&expect) < 1e-12);
        let gs = syrk_nt_scaled(2.5, &a);
        expect.scale(2.5);
        assert!(gs.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn gemv_matches_gemm() {
        let mut rng = test_rng();
        let a = Mat::random(9, 4, &mut rng);
        let x: Vec<f64> = (0..4).map(|i| i as f64 - 1.5).collect();
        let mut y = vec![1.0; 9];
        gemv(2.0, &a, &x, 0.5, &mut y);
        let xm = Mat::from_vec(4, 1, x.clone());
        let mut ym = Mat::from_vec(9, 1, vec![1.0; 9]);
        gemm(2.0, &a, Transpose::No, &xm, Transpose::No, 0.5, &mut ym);
        for i in 0..9 {
            assert!((y[i] - ym[(i, 0)]).abs() < 1e-13);
        }
    }

    #[test]
    fn gemv_accumulates_with_beta_across_chunks() {
        // Rows > chunk size so the parallel row-chunk path runs, with
        // beta != 0 checking the accumulate contract per chunk.
        let m = 5000;
        let n = 30;
        let a = Mat::from_fn(m, n, |i, j| ((i * 7 + j * 13) % 19) as f64 * 0.1 - 0.9);
        let x: Vec<f64> = (0..n).map(|j| 0.2 * j as f64 - 1.0).collect();
        let mut y: Vec<f64> = (0..m).map(|i| (i % 11) as f64 - 5.0).collect();
        let y0 = y.clone();
        gemv(1.5, &a, &x, -0.5, &mut y);
        for i in (0..m).step_by(487) {
            let mut expect = -0.5 * y0[i];
            for j in 0..n {
                expect += 1.5 * a[(i, j)] * x[j];
            }
            assert!((y[i] - expect).abs() < 1e-10, "row {i}: {} vs {expect}", y[i]);
        }
    }

    #[test]
    fn empty_inner_dim() {
        let a = Mat::zeros(3, 0);
        let b = Mat::zeros(0, 2);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.norm_fro(), 0.0);
        // k == 0 with beta: pure scaling.
        let mut c2 = Mat::eye(3);
        let z = Mat::zeros(3, 0);
        let z2 = Mat::zeros(0, 3);
        gemm(1.0, &z, Transpose::No, &z2, Transpose::No, 2.0, &mut c2);
        assert_eq!(c2[(0, 0)], 2.0);
    }

    #[test]
    fn skinny_packed_matches_naive_all_transposes() {
        // Forces the n ≤ MR packed path: tall output, few columns, both
        // full and partial MR strips, all four folds.
        let mut rng = test_rng();
        for (m, n, k) in [(67, 3, 50), (64, 8, 33), (200, 1, 7), (40, 5, 1)] {
            for (ta, tb) in [
                (Transpose::No, Transpose::No),
                (Transpose::Yes, Transpose::No),
                (Transpose::No, Transpose::Yes),
                (Transpose::Yes, Transpose::Yes),
            ] {
                let a = match ta {
                    Transpose::No => Mat::random(m, k, &mut rng),
                    Transpose::Yes => Mat::random(k, m, &mut rng),
                };
                let b = match tb {
                    Transpose::No => Mat::random(k, n, &mut rng),
                    Transpose::Yes => Mat::random(n, k, &mut rng),
                };
                let av = View { data: a.as_slice(), nrows: a.nrows(), trans: ta };
                let bv = View { data: b.as_slice(), nrows: b.nrows(), trans: tb };
                let mut c = Mat::from_fn(m, n, |i, j| (i + 2 * j) as f64 * 0.01);
                let mut expect = c.clone();
                gemm_small(1.7, &av, &bv, -0.3, expect.as_mut_slice(), m, n, k);
                gemm_skinny_packed(
                    simd::active_kernel(),
                    1.7,
                    &av,
                    &bv,
                    -0.3,
                    c.as_mut_slice(),
                    m,
                    n,
                    k,
                );
                // Same fold per element as the serial kernels → exact match.
                for (got, want) in c.as_slice().iter().zip(expect.as_slice().iter()) {
                    assert_eq!(got.to_bits(), want.to_bits(), "({ta:?},{tb:?}) m={m} n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn implicit_hx_shape_routes_to_skinny_tiles() {
        let _g = crate::simd::testutil::dispatch_lock();
        let mut rng = test_rng();
        // The previously-regressed BENCH_gemm shape family, scaled down:
        // tall A, 8 states. Untransposed A must take the direct (pack-free)
        // axpy tile; transposed A must take the packed dot tile.
        let a = Mat::random(96, 512, &mut rng);
        let at = Mat::random(512, 96, &mut rng);
        let b = Mat::random(512, 8, &mut rng);
        obskit::enable();
        let mut c = Mat::zeros(96, 8);
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
        gemm(1.0, &at, Transpose::Yes, &b, Transpose::No, 0.0, &mut c);
        obskit::disable();
        let dispatch = obskit::take_trace().counters.kernel_dispatch;
        for prefix in ["gemm.skinny_direct.", "gemm.skinny_packed."] {
            let hit = dispatch.iter().any(|(l, _)| l.starts_with(prefix));
            assert!(hit, "missing {prefix}* in dispatch counters: {dispatch:?}");
        }
    }

    #[test]
    fn forced_scalar_fallback_matches_dispatched_kernel() {
        let _g = crate::simd::testutil::dispatch_lock();
        let mut rng = test_rng();
        // One shape per dispatch family: small, skinny_packed, skinny_cols
        // (m < 3·MR), blocked 8×4 (n < 16), blocked 8×8.
        for (m, n, k) in [(12, 5, 4), (300, 6, 128), (20, 40, 100), (150, 13, 70), (150, 120, 70)]
        {
            let a = Mat::random(m, k, &mut rng);
            let b = Mat::random(k, n, &mut rng);
            let c0 = Mat::random(m, n, &mut rng);
            let run = |kern| {
                crate::simd::testutil::with_kernel(kern, || {
                    let mut c = c0.clone();
                    gemm(1.3, &a, Transpose::No, &b, Transpose::No, 0.4, &mut c);
                    c
                })
            };
            let cs = run(simd::Kernel::Scalar);
            if !crate::simd::avx2_available() {
                continue;
            }
            let ca = run(simd::Kernel::Avx2);
            for (x, y) in ca.as_slice().iter().zip(cs.as_slice().iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "shape ({m},{n},{k})");
            }
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Dense reference: plain triple loop over `alpha·op(A)op(B) + beta·C`.
        fn reference(
            alpha: f64,
            a: &Mat,
            ta: Transpose,
            b: &Mat,
            tb: Transpose,
            beta: f64,
            c0: &Mat,
        ) -> Mat {
            let (m, k) = op_shape(a, ta);
            let (_, n) = op_shape(b, tb);
            let av = View { data: a.as_slice(), nrows: a.nrows(), trans: ta };
            let bv = View { data: b.as_slice(), nrows: b.nrows(), trans: tb };
            let mut c = Mat::zeros(m, n);
            for j in 0..n {
                for i in 0..m {
                    let mut s = 0.0;
                    for l in 0..k {
                        s += av.get(i, l) * bv.get(l, j);
                    }
                    c[(i, j)] = alpha * s + beta * c0[(i, j)];
                }
            }
            c
        }

        fn transpose_strategy() -> impl Strategy<Value = Transpose> {
            prop_oneof![Just(Transpose::No), Just(Transpose::Yes)]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// The correctness gate for the microkernel: the packed engine
            /// must match the naive reference for every transpose combo,
            /// arbitrary alpha/beta, and degenerate shapes (zero dims,
            /// single rows/columns, non-multiple-of-tile edges).
            #[test]
            fn packed_gemm_matches_reference(
                m in prop_oneof![Just(0usize), Just(1), 2usize..40],
                n in prop_oneof![Just(0usize), Just(1), 2usize..40],
                k in prop_oneof![Just(0usize), Just(1), 2usize..40],
                ta in transpose_strategy(),
                tb in transpose_strategy(),
                alpha in -2.0f64..2.0,
                beta in prop_oneof![Just(0.0f64), Just(1.0), -1.5f64..1.5],
                seed in 0u64..u64::MAX,
            ) {
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let a = match ta {
                    Transpose::No => Mat::random(m, k, &mut rng),
                    Transpose::Yes => Mat::random(k, m, &mut rng),
                };
                let b = match tb {
                    Transpose::No => Mat::random(k, n, &mut rng),
                    Transpose::Yes => Mat::random(n, k, &mut rng),
                };
                let c0 = Mat::random(m, n, &mut rng);
                let expect = reference(alpha, &a, ta, &b, tb, beta, &c0);

                // Dispatching entry point.
                let mut c = c0.clone();
                gemm(alpha, &a, ta, &b, tb, beta, &mut c);
                prop_assert!(c.max_abs_diff(&expect) < 1e-10);

                // Forced blocked path (the small-size dispatcher would route
                // these shapes to the serial loops otherwise).
                if m > 0 && n > 0 && k > 0 && alpha != 0.0 {
                    let av = View { data: a.as_slice(), nrows: a.nrows(), trans: ta };
                    let bv = View { data: b.as_slice(), nrows: b.nrows(), trans: tb };
                    let mut cb = c0.clone();
                    gemm_blocked(alpha, &av, &bv, beta, cb.as_mut_slice(), m, n, k);
                    prop_assert!(cb.max_abs_diff(&expect) < 1e-10);
                }
            }

            /// The SIMD microkernels must agree with the scalar fallback
            /// BITWISE — same mul/add per element in the same order — across
            /// edge tiles: partial MR/NR strips, kc ∈ {0, 1}, and beta
            /// accumulation onto pre-filled C (the aliased-update path).
            #[test]
            fn simd_and_scalar_paths_agree_bitwise(
                m in prop_oneof![Just(1usize), Just(7), Just(8), Just(9), Just(25), 1usize..70],
                n in prop_oneof![Just(1usize), Just(4), Just(8), Just(9), Just(17), 1usize..40],
                k in prop_oneof![Just(0usize), Just(1), Just(2), 1usize..90],
                ta in transpose_strategy(),
                tb in transpose_strategy(),
                alpha in -2.0f64..2.0,
                beta in prop_oneof![Just(0.0f64), Just(1.0), -1.5f64..1.5],
                seed in 0u64..u64::MAX,
            ) {
                prop_assume!(crate::simd::avx2_available());
                use rand::SeedableRng;
                let _g = crate::simd::testutil::dispatch_lock();
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let a = match ta {
                    Transpose::No => Mat::random(m, k, &mut rng),
                    Transpose::Yes => Mat::random(k, m, &mut rng),
                };
                let b = match tb {
                    Transpose::No => Mat::random(k, n, &mut rng),
                    Transpose::Yes => Mat::random(n, k, &mut rng),
                };
                let c0 = Mat::random(m, n, &mut rng);
                let bits = |c: &Mat| c.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();

                // Dispatched entry point under both forced kernels.
                let run = |kern: simd::Kernel| {
                    crate::simd::testutil::with_kernel(kern, || {
                        let mut c = c0.clone();
                        gemm(alpha, &a, ta, &b, tb, beta, &mut c);
                        c
                    })
                };
                prop_assert_eq!(bits(&run(simd::Kernel::Avx2)), bits(&run(simd::Kernel::Scalar)));

                // Forced internal paths (the dispatcher would route small
                // shapes away from them otherwise).
                if m > 0 && n > 0 && k > 0 && alpha != 0.0 {
                    let av = View { data: a.as_slice(), nrows: a.nrows(), trans: ta };
                    let bv = View { data: b.as_slice(), nrows: b.nrows(), trans: tb };
                    let run_blocked = |kern: simd::Kernel| {
                        crate::simd::testutil::with_kernel(kern, || {
                            let mut c = c0.clone();
                            gemm_blocked(alpha, &av, &bv, beta, c.as_mut_slice(), m, n, k);
                            c
                        })
                    };
                    prop_assert_eq!(
                        bits(&run_blocked(simd::Kernel::Avx2)),
                        bits(&run_blocked(simd::Kernel::Scalar))
                    );
                    if n <= MR {
                        let run_skinny = |kern: simd::Kernel| {
                            crate::simd::testutil::with_kernel(kern, || {
                                let mut c = c0.clone();
                                gemm_skinny_packed(
                                    kern, alpha, &av, &bv, beta, c.as_mut_slice(), m, n, k,
                                );
                                c
                            })
                        };
                        let skinny_avx = run_skinny(simd::Kernel::Avx2);
                        prop_assert_eq!(
                            bits(&skinny_avx),
                            bits(&run_skinny(simd::Kernel::Scalar))
                        );
                        // And the packed skinny path must reproduce the
                        // serial kernels bitwise (same fold, new layout).
                        let mut serial = c0.clone();
                        gemm_small(alpha, &av, &bv, beta, serial.as_mut_slice(), m, n, k);
                        prop_assert_eq!(bits(&skinny_avx), bits(&serial));
                    }
                }
            }

            #[test]
            fn packed_syrk_matches_gemm(
                n in 1usize..30,
                k in 1usize..30,
                alpha in -2.0f64..2.0,
                seed in 0u64..u64::MAX,
            ) {
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let a = Mat::random(k, n, &mut rng);
                let expect = {
                    let mut e = gemm_tn(&a, &a);
                    e.scale(alpha);
                    e
                };
                let g = syrk_tn_scaled(alpha, &a);
                prop_assert!(g.max_abs_diff(&expect) < 1e-10);
                // Forced tiled path.
                let av = View { data: a.as_slice(), nrows: a.nrows(), trans: Transpose::Yes };
                let bv = View { data: a.as_slice(), nrows: a.nrows(), trans: Transpose::No };
                let mut gt = syrk_engine(alpha, &av, &bv, n, k);
                // syrk_engine dispatches on size internally; compare anyway.
                prop_assert!(gt.max_abs_diff(&expect) < 1e-10);
                gt.symmetrize();
                prop_assert!(gt.max_abs_diff(&expect) < 1e-10);
            }
        }
    }
}
