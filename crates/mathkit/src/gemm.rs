//! Blocked, Rayon-parallel GEMM and friends.
//!
//! The paper leans on MKL `dgemm` for the face-splitting products and the
//! `V_Hxc = P_vcᵀ (f_Hxc P_vc)` contractions. We provide a cache-blocked
//! column-panel GEMM parallelized over output columns — the same shape of
//! parallelism the row-block data distribution in the paper exploits.

use crate::mat::Mat;
use rayon::prelude::*;

/// Whether an operand is used as-is or transposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transpose {
    No,
    Yes,
}

/// `C = alpha * op(A) * op(B) + beta * C`.
///
/// Shapes (after `op`): `op(A)` is `m × k`, `op(B)` is `k × n`, `C` is `m × n`.
pub fn gemm(
    alpha: f64,
    a: &Mat,
    ta: Transpose,
    b: &Mat,
    tb: Transpose,
    beta: f64,
    c: &mut Mat,
) {
    let (m, ka) = match ta {
        Transpose::No => (a.nrows(), a.ncols()),
        Transpose::Yes => (a.ncols(), a.nrows()),
    };
    let (kb, n) = match tb {
        Transpose::No => (b.nrows(), b.ncols()),
        Transpose::Yes => (b.ncols(), b.nrows()),
    };
    assert_eq!(ka, kb, "inner dimensions must agree");
    assert_eq!(c.shape(), (m, n), "output shape mismatch");
    let k = ka;

    // Parallelize over output columns: each worker owns a disjoint C column.
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let (a_rows, b_rows) = (a.nrows(), b.nrows());

    c.par_cols_mut().enumerate().for_each(|(j, c_col)| {
        if beta == 0.0 {
            c_col.fill(0.0);
        } else if beta != 1.0 {
            for x in c_col.iter_mut() {
                *x *= beta;
            }
        }
        match (ta, tb) {
            (Transpose::No, Transpose::No) => {
                // C[:,j] += alpha * sum_l A[:,l] * B[l,j]; A columns contiguous.
                let b_col = &b_data[j * b_rows..(j + 1) * b_rows];
                for l in 0..k {
                    let blj = alpha * b_col[l];
                    if blj == 0.0 {
                        continue;
                    }
                    let a_col = &a_data[l * a_rows..(l + 1) * a_rows];
                    for i in 0..m {
                        c_col[i] += blj * a_col[i];
                    }
                }
            }
            (Transpose::Yes, Transpose::No) => {
                // C[i,j] += alpha * dot(A[:,i], B[:,j]); both columns contiguous.
                let b_col = &b_data[j * b_rows..(j + 1) * b_rows];
                for i in 0..m {
                    let a_col = &a_data[i * a_rows..(i + 1) * a_rows];
                    let mut s = 0.0;
                    for l in 0..k {
                        s += a_col[l] * b_col[l];
                    }
                    c_col[i] += alpha * s;
                }
            }
            (Transpose::No, Transpose::Yes) => {
                // C[:,j] += alpha * sum_l A[:,l] * B[j,l].
                for l in 0..k {
                    let blj = alpha * b_data[j + l * b_rows];
                    if blj == 0.0 {
                        continue;
                    }
                    let a_col = &a_data[l * a_rows..(l + 1) * a_rows];
                    for i in 0..m {
                        c_col[i] += blj * a_col[i];
                    }
                }
            }
            (Transpose::Yes, Transpose::Yes) => {
                for i in 0..m {
                    let a_col = &a_data[i * a_rows..(i + 1) * a_rows];
                    let mut s = 0.0;
                    for l in 0..k {
                        s += a_col[l] * b_data[j + l * b_rows];
                    }
                    c_col[i] += alpha * s;
                }
            }
        }
    });
}

/// Convenience: `C = AᵀB` (the dominant contraction in `V_Hxc` assembly).
pub fn gemm_tn(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.ncols(), b.ncols());
    gemm(1.0, a, Transpose::Yes, b, Transpose::No, 0.0, &mut c);
    c
}

/// Convenience: `C = A·B`.
pub fn matmul(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.nrows(), b.ncols());
    gemm(1.0, a, Transpose::No, b, Transpose::No, 0.0, &mut c);
    c
}

/// Symmetric rank-k update `C = AᵀA` (Gram matrix), exploiting symmetry.
pub fn syrk_tn(a: &Mat) -> Mat {
    let n = a.ncols();
    let mut c = Mat::zeros(n, n);
    let cols: Vec<Vec<f64>> = (0..n)
        .into_par_iter()
        .map(|j| {
            let aj = a.col(j);
            let mut col = vec![0.0; n];
            for (i, ci) in col.iter_mut().enumerate().take(j + 1) {
                let ai = a.col(i);
                let mut s = 0.0;
                for l in 0..a.nrows() {
                    s += ai[l] * aj[l];
                }
                *ci = s;
            }
            col
        })
        .collect();
    for (j, col) in cols.iter().enumerate() {
        for (i, &v) in col.iter().enumerate().take(j + 1) {
            c[(i, j)] = v;
            c[(j, i)] = v;
        }
    }
    c
}

/// `y = alpha * A x + beta * y`.
pub fn gemv(alpha: f64, a: &Mat, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(a.ncols(), x.len());
    assert_eq!(a.nrows(), y.len());
    if beta == 0.0 {
        y.fill(0.0);
    } else if beta != 1.0 {
        for v in y.iter_mut() {
            *v *= beta;
        }
    }
    for (l, &xl) in x.iter().enumerate() {
        let axl = alpha * xl;
        if axl == 0.0 {
            continue;
        }
        let col = a.col(l);
        for i in 0..y.len() {
            y[i] += axl * col[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mul(a: &Mat, b: &Mat) -> Mat {
        let mut c = Mat::zeros(a.nrows(), b.ncols());
        for i in 0..a.nrows() {
            for j in 0..b.ncols() {
                let mut s = 0.0;
                for l in 0..a.ncols() {
                    s += a[(i, l)] * b[(l, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    #[test]
    fn gemm_nn_matches_naive() {
        let mut rng = rand::thread_rng();
        let a = Mat::random(17, 9, &mut rng);
        let b = Mat::random(9, 13, &mut rng);
        let c = matmul(&a, &b);
        assert!(c.max_abs_diff(&naive_mul(&a, &b)) < 1e-12);
    }

    #[test]
    fn gemm_tn_matches_naive() {
        let mut rng = rand::thread_rng();
        let a = Mat::random(23, 7, &mut rng);
        let b = Mat::random(23, 5, &mut rng);
        let c = gemm_tn(&a, &b);
        assert!(c.max_abs_diff(&naive_mul(&a.transpose(), &b)) < 1e-12);
    }

    #[test]
    fn gemm_nt_and_tt() {
        let mut rng = rand::thread_rng();
        let a = Mat::random(6, 8, &mut rng);
        let b = Mat::random(10, 8, &mut rng);
        let mut c = Mat::zeros(6, 10);
        gemm(1.0, &a, Transpose::No, &b, Transpose::Yes, 0.0, &mut c);
        assert!(c.max_abs_diff(&naive_mul(&a, &b.transpose())) < 1e-12);

        let e = Mat::random(10, 6, &mut rng);
        let mut d = Mat::zeros(8, 10);
        gemm(1.0, &a, Transpose::Yes, &e, Transpose::Yes, 0.0, &mut d);
        assert!(d.max_abs_diff(&naive_mul(&a.transpose(), &e.transpose())) < 1e-12);
    }

    #[test]
    fn gemm_alpha_beta_accumulate() {
        let a = Mat::eye(3);
        let b = Mat::from_fn(3, 3, |i, j| (i + j) as f64);
        let mut c = Mat::eye(3);
        gemm(2.0, &a, Transpose::No, &b, Transpose::No, 3.0, &mut c);
        // C = 2*B + 3*I
        assert_eq!(c[(0, 0)], 3.0);
        assert_eq!(c[(1, 2)], 6.0);
        assert_eq!(c[(2, 2)], 11.0);
    }

    #[test]
    fn syrk_is_gram() {
        let mut rng = rand::thread_rng();
        let a = Mat::random(14, 6, &mut rng);
        let g = syrk_tn(&a);
        assert!(g.max_abs_diff(&gemm_tn(&a, &a)) < 1e-12);
        // symmetric
        assert!(g.max_abs_diff(&g.transpose()) < 1e-14);
    }

    #[test]
    fn gemv_matches_gemm() {
        let mut rng = rand::thread_rng();
        let a = Mat::random(9, 4, &mut rng);
        let x: Vec<f64> = (0..4).map(|i| i as f64 - 1.5).collect();
        let mut y = vec![1.0; 9];
        gemv(2.0, &a, &x, 0.5, &mut y);
        let xm = Mat::from_vec(4, 1, x.clone());
        let mut ym = Mat::from_vec(9, 1, vec![1.0; 9]);
        gemm(2.0, &a, Transpose::No, &xm, Transpose::No, 0.5, &mut ym);
        for i in 0..9 {
            assert!((y[i] - ym[(i, 0)]).abs() < 1e-13);
        }
    }

    #[test]
    fn empty_inner_dim() {
        let a = Mat::zeros(3, 0);
        let b = Mat::zeros(0, 2);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.norm_fro(), 0.0);
    }
}
