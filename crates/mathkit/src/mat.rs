//! Column-major dense matrix.
//!
//! Column-major mirrors the LAPACK convention used throughout the original
//! code (wavefunctions are stored as `N_r × N_b` tall matrices whose columns
//! are orbitals, and both the face-splitting product and the FFT batch walk
//! columns contiguously).

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `f64` matrix stored column-major.
#[derive(Clone, PartialEq)]
pub struct Mat {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Zero-filled `nrows × ncols` matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Mat { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// Identity matrix of order `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a column-major buffer. Panics if the length mismatches.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "buffer length != nrows*ncols");
        Mat { nrows, ncols, data }
    }

    /// Build from a generator evaluated at every `(row, col)` index.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                data.push(f(i, j));
            }
        }
        Mat { nrows, ncols, data }
    }

    /// Build from row-major nested slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = if nrows == 0 { 0 } else { rows[0].len() };
        for r in rows {
            assert_eq!(r.len(), ncols, "ragged rows");
        }
        Mat::from_fn(nrows, ncols, |i, j| rows[i][j])
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Raw column-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consume the matrix, handing back its column-major buffer (no copy) —
    /// the shape to use when a buffer-owning API (e.g. the nonblocking
    /// collectives) takes over the storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Mutable raw column-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.ncols);
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Mutably borrow column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.ncols);
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Split into disjoint mutable column slices (for parallel writers).
    pub fn par_cols_mut(&mut self) -> impl rayon::iter::IndexedParallelIterator<Item = &mut [f64]> {
        use rayon::prelude::*;
        self.data.par_chunks_mut(self.nrows)
    }

    /// Copy of row `i`.
    pub fn row(&self, i: usize) -> Vec<f64> {
        (0..self.ncols).map(|j| self[(i, j)]).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.ncols, self.nrows);
        for j in 0..self.ncols {
            for i in 0..self.nrows {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Copy of the contiguous column block `[j0, j1)`.
    pub fn col_block(&self, j0: usize, j1: usize) -> Mat {
        assert!(j0 <= j1 && j1 <= self.ncols);
        Mat::from_vec(self.nrows, j1 - j0, self.data[j0 * self.nrows..j1 * self.nrows].to_vec())
    }

    /// Copy of the row block `[i0, i1)`.
    pub fn row_block(&self, i0: usize, i1: usize) -> Mat {
        assert!(i0 <= i1 && i1 <= self.nrows);
        Mat::from_fn(i1 - i0, self.ncols, |i, j| self[(i0 + i, j)])
    }

    /// Gather the given rows into a new `rows.len() × ncols` matrix.
    pub fn select_rows(&self, rows: &[usize]) -> Mat {
        Mat::from_fn(rows.len(), self.ncols, |i, j| self[(rows[i], j)])
    }

    /// Gather the given columns into a new `nrows × cols.len()` matrix.
    pub fn select_cols(&self, cols: &[usize]) -> Mat {
        let mut out = Mat::zeros(self.nrows, cols.len());
        for (k, &c) in cols.iter().enumerate() {
            out.col_mut(k).copy_from_slice(self.col(c));
        }
        out
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0, |a, &x| a.max(x.abs()))
    }

    /// `self += alpha * other` (same shape).
    pub fn axpy(&mut self, alpha: f64, other: &Mat) {
        assert_eq!(self.shape(), other.shape());
        crate::simd::axpy(alpha, &other.data, &mut self.data);
    }

    /// Scale every entry by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Mat) -> Mat {
        assert_eq!(self.shape(), other.shape());
        let data = self.data.iter().zip(other.data.iter()).map(|(a, b)| a * b).collect();
        Mat::from_vec(self.nrows, self.ncols, data)
    }

    /// `max_ij |self - other|`.
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(other.data.iter())
            .fold(0.0f64, |acc, (a, b)| acc.max((a - b).abs()))
    }

    /// Symmetrize in place: `A <- (A + Aᵀ)/2`.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.nrows, self.ncols);
        for j in 0..self.ncols {
            for i in 0..j {
                let s = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = s;
                self[(j, i)] = s;
            }
        }
    }

    /// Fill with samples from `rng`-driven uniform(-1, 1).
    pub fn fill_random(&mut self, rng: &mut impl rand::Rng) {
        for x in &mut self.data {
            *x = rng.gen_range(-1.0..1.0);
        }
    }

    /// Random matrix (test/benchmark convenience).
    pub fn random(nrows: usize, ncols: usize, rng: &mut impl rand::Rng) -> Mat {
        let mut m = Mat::zeros(nrows, ncols);
        m.fill_random(rng);
        m
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i + j * self.nrows]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i + j * self.nrows]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.nrows, self.ncols)?;
        let show_r = self.nrows.min(8);
        let show_c = self.ncols.min(8);
        for i in 0..show_r {
            write!(f, "  ")?;
            for j in 0..show_c {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.ncols > show_c { "..." } else { "" })?;
        }
        if self.nrows > show_r {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_index() {
        let mut m = Mat::zeros(3, 2);
        assert_eq!(m.shape(), (3, 2));
        m[(2, 1)] = 5.0;
        assert_eq!(m[(2, 1)], 5.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn column_major_layout() {
        let m = Mat::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        // columns contiguous: [a00 a10 | a01 a11 | a02 a12]
        assert_eq!(m.as_slice(), &[0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
        assert_eq!(m.col(1), &[1.0, 11.0]);
    }

    #[test]
    fn from_rows_matches_indexing() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn transpose_involution() {
        let m = Mat::from_fn(4, 3, |i, j| (i + 7 * j) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 3)], m[(3, 2)]);
    }

    #[test]
    fn select_rows_and_cols() {
        let m = Mat::from_fn(4, 4, |i, j| (10 * i + j) as f64);
        let r = m.select_rows(&[3, 1]);
        assert_eq!(r.shape(), (2, 4));
        assert_eq!(r[(0, 2)], 32.0);
        assert_eq!(r[(1, 0)], 10.0);
        let c = m.select_cols(&[2, 0]);
        assert_eq!(c[(1, 0)], 12.0);
        assert_eq!(c[(3, 1)], 30.0);
    }

    #[test]
    fn norms() {
        let m = Mat::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]);
        assert!((m.norm_fro() - 5.0).abs() < 1e-15);
        assert_eq!(m.norm_max(), 4.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Mat::eye(2);
        let b = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        a.axpy(2.0, &b);
        assert_eq!(a[(0, 1)], 2.0);
        a.scale(0.5);
        assert_eq!(a[(0, 0)], 0.5);
    }

    #[test]
    fn symmetrize_averages() {
        let mut m = Mat::from_rows(&[&[1.0, 2.0], &[4.0, 1.0]]);
        m.symmetrize();
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn hadamard_elementwise() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let h = a.hadamard(&b);
        assert_eq!(h[(1, 1)], 32.0);
    }

    #[test]
    fn row_and_col_blocks() {
        let m = Mat::from_fn(4, 4, |i, j| (10 * i + j) as f64);
        let cb = m.col_block(1, 3);
        assert_eq!(cb.shape(), (4, 2));
        assert_eq!(cb[(2, 0)], 21.0);
        let rb = m.row_block(2, 4);
        assert_eq!(rb.shape(), (2, 4));
        assert_eq!(rb[(0, 3)], 23.0);
    }
}
