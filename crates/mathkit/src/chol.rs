//! Cholesky factorization and triangular solves.
//!
//! Used by the ISDF Galerkin fit (`Θ = ZCᵀ(CCᵀ)⁻¹` solves an SPD system) and
//! by the Cholesky-QR orthonormalization inside LOBPCG.

use crate::mat::Mat;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// Returns `Err` with the failing pivot index if `a` is not (numerically)
/// positive definite — LOBPCG uses this signal to trigger basis truncation.
pub fn cholesky(a: &Mat) -> Result<Mat, usize> {
    let n = a.nrows();
    assert_eq!(n, a.ncols());
    let mut l = Mat::zeros(n, n);
    for j in 0..n {
        let mut diag = a[(j, j)];
        for k in 0..j {
            diag -= l[(j, k)] * l[(j, k)];
        }
        if diag <= 0.0 || !diag.is_finite() {
            return Err(j);
        }
        let ljj = diag.sqrt();
        l[(j, j)] = ljj;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / ljj;
        }
    }
    Ok(l)
}

/// Solve `L X = B` for lower-triangular `L`, overwriting nothing.
pub fn solve_lower(l: &Mat, b: &Mat) -> Mat {
    let n = l.nrows();
    assert_eq!(b.nrows(), n);
    let mut x = b.clone();
    for j in 0..x.ncols() {
        for i in 0..n {
            let mut s = x[(i, j)];
            for k in 0..i {
                s -= l[(i, k)] * x[(k, j)];
            }
            x[(i, j)] = s / l[(i, i)];
        }
    }
    x
}

/// Solve `Lᵀ X = B` for lower-triangular `L`.
pub fn solve_lower_transpose(l: &Mat, b: &Mat) -> Mat {
    let n = l.nrows();
    assert_eq!(b.nrows(), n);
    let mut x = b.clone();
    for j in 0..x.ncols() {
        for i in (0..n).rev() {
            let mut s = x[(i, j)];
            for k in (i + 1)..n {
                s -= l[(k, i)] * x[(k, j)];
            }
            x[(i, j)] = s / l[(i, i)];
        }
    }
    x
}

/// Solve the SPD system `A X = B` via Cholesky.
pub fn solve_spd(a: &Mat, b: &Mat) -> Result<Mat, usize> {
    let l = cholesky(a)?;
    Ok(solve_lower_transpose(&l, &solve_lower(&l, b)))
}

/// Solve `X Lᵀ = B` (right solve), i.e. `X = B L⁻ᵀ`, for lower-triangular `L`.
/// This is the shape LOBPCG's Cholesky-QR needs: `Q = S L⁻ᵀ`.
pub fn solve_right_lower_transpose(b: &Mat, l: &Mat) -> Mat {
    // X Lᵀ = B  ⇔  column j of X satisfies a forward recurrence over columns.
    let n = l.nrows();
    assert_eq!(b.ncols(), n);
    let mut x = b.clone();
    for j in 0..n {
        let ljj = l[(j, j)];
        // X[:,j] = (B[:,j] - sum_{k<j} X[:,k] L[j,k]) / L[j,j]
        for k in 0..j {
            let ljk = l[(j, k)];
            if ljk == 0.0 {
                continue;
            }
            let (xk_ptr, xj_ptr) = (k, j);
            let nr = x.nrows();
            for i in 0..nr {
                let v = x[(i, xk_ptr)] * ljk;
                x[(i, xj_ptr)] -= v;
            }
        }
        for i in 0..x.nrows() {
            x[(i, j)] /= ljj;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, matmul, syrk_tn, Transpose};

    fn spd(n: usize, rng: &mut impl rand::Rng) -> Mat {
        let b = Mat::random(n + 3, n, rng);
        let mut g = syrk_tn(&b);
        for i in 0..n {
            g[(i, i)] += 0.5;
        }
        g
    }

    #[test]
    fn cholesky_reconstructs() {
        let mut rng = rand::thread_rng();
        let a = spd(8, &mut rng);
        let l = cholesky(&a).unwrap();
        let mut llt = Mat::zeros(8, 8);
        gemm(1.0, &l, Transpose::No, &l, Transpose::Yes, 0.0, &mut llt);
        assert!(llt.max_abs_diff(&a) < 1e-10);
        // strict lower-triangular factor
        for j in 0..8 {
            for i in 0..j {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn indefinite_is_rejected() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(cholesky(&a).is_err());
    }

    #[test]
    fn spd_solve_roundtrip() {
        let mut rng = rand::thread_rng();
        let a = spd(10, &mut rng);
        let x_true = Mat::random(10, 3, &mut rng);
        let b = matmul(&a, &x_true);
        let x = solve_spd(&a, &b).unwrap();
        assert!(x.max_abs_diff(&x_true) < 1e-8);
    }

    #[test]
    fn triangular_solves() {
        let mut rng = rand::thread_rng();
        let a = spd(6, &mut rng);
        let l = cholesky(&a).unwrap();
        let b = Mat::random(6, 2, &mut rng);
        let y = solve_lower(&l, &b);
        assert!(matmul(&l, &y).max_abs_diff(&b) < 1e-10);
        let z = solve_lower_transpose(&l, &b);
        assert!(matmul(&l.transpose(), &z).max_abs_diff(&b) < 1e-10);
    }

    #[test]
    fn right_solve() {
        let mut rng = rand::thread_rng();
        let a = spd(5, &mut rng);
        let l = cholesky(&a).unwrap();
        let b = Mat::random(7, 5, &mut rng);
        let x = solve_right_lower_transpose(&b, &l);
        // X Lᵀ should equal B
        assert!(matmul(&x, &l.transpose()).max_abs_diff(&b) < 1e-9);
    }
}
