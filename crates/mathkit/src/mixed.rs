//! Mixed-precision GEMM: f32 storage, f64 accumulation.
//!
//! The implicit-Hamiltonian apply is memory-bound — its GEMMs stream a large
//! `op(A)` (the ISDF coefficient matrix `C` or the compressed kernel `Ṽ`)
//! against a handful of state columns. Storing those operands in f32 halves
//! the streamed bytes; accumulating in f64 through FMA keeps roughly 11 extra
//! bits of headroom over a pure-f32 product, which is what lets the LOBPCG
//! inner iterations in [`crate::lobpcg::lobpcg_refined`] converge to ~1e-6
//! relative residuals before the f64 polish takes over (the classic
//! iterative-refinement split).
//!
//! [`gemm_mixed`] is tuned for exactly those tall-skinny shapes: `op(A)` is
//! packed once into MR-row f32 strips over the full shared dimension, and
//! the (small) `op(B)` is staged into one `k × n` f32 buffer processed in
//! column groups of ≤ MR through the FMA tile in [`crate::simd`]. Wide
//! outputs are still correct — they just don't get the blocked-path cache
//! treatment, which the solver's mixed shapes (`n ≤ 3k ≈ 24`) never need.

use crate::gemm::Transpose;
use crate::mat::Mat;
use crate::simd::{self, Kernel};
use rayon::prelude::*;

/// Tile height shared with the f64 engine.
const MR: usize = 8;
/// Same small-shape cutoff as the f64 engine (`2·m·n·k` flops).
const SMALL_FLOPS: usize = 1 << 17;

/// Column-major dense `f32` matrix — the reduced-precision twin of [`Mat`],
/// carrying orbital/ISDF factors through the mixed solve path.
#[derive(Clone, Debug, PartialEq)]
pub struct MatF32 {
    nrows: usize,
    ncols: usize,
    data: Vec<f32>,
}

impl MatF32 {
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        MatF32 { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// Demote an f64 matrix (round-to-nearest per element).
    pub fn from_mat(m: &Mat) -> Self {
        MatF32 {
            nrows: m.nrows(),
            ncols: m.ncols(),
            data: m.as_slice().iter().map(|&v| v as f32).collect(),
        }
    }

    /// Promote back to f64 (exact per element).
    pub fn to_mat(&self) -> Mat {
        Mat::from_vec(self.nrows, self.ncols, self.data.iter().map(|&v| v as f64).collect())
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn col(&self, j: usize) -> &[f32] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Pack `op(self)` once into the MR-row strip layout consumed by
    /// [`gemm_mixed_packed`]. Operators that are applied many times against
    /// changing right-hand sides (the ISDF factors inside a LOBPCG solve)
    /// should pack once up front instead of paying the strip pack on every
    /// [`gemm_mixed`] call.
    pub fn pack(&self, trans: Transpose) -> PackedF32 {
        let (m, k) = match trans {
            Transpose::No => (self.nrows, self.ncols),
            Transpose::Yes => (self.ncols, self.nrows),
        };
        let av = View32 { data: &self.data, nrows: self.nrows, trans };
        let strips = m.div_ceil(MR);
        let mut data = vec![0.0f32; strips * MR * k];
        data.par_chunks_mut(MR * k)
            .enumerate()
            .for_each(|(s, buf)| pack_strip(&av, s * MR, m, k, buf));
        PackedF32 { m, k, data }
    }
}

/// `op(A)` pre-packed into zero-padded MR-row f32 strips over the full shared
/// dimension — the operand format [`gemm_mixed_packed`] consumes directly.
pub struct PackedF32 {
    m: usize,
    k: usize,
    data: Vec<f32>,
}

impl PackedF32 {
    /// Rows of `op(A)`.
    pub fn nrows(&self) -> usize {
        self.m
    }

    /// Shared (inner) dimension of `op(A)`.
    pub fn inner(&self) -> usize {
        self.k
    }
}

/// Transpose-aware read-only view of a column-major f32 operand.
#[derive(Clone, Copy)]
struct View32<'a> {
    data: &'a [f32],
    nrows: usize,
    trans: Transpose,
}

impl View32<'_> {
    /// `op(X)[i, l]`.
    #[inline(always)]
    fn get(&self, i: usize, l: usize) -> f32 {
        match self.trans {
            Transpose::No => self.data[i + l * self.nrows],
            Transpose::Yes => self.data[l + i * self.nrows],
        }
    }
}

/// `C = alpha · op(A) · op(B) + beta · C` with f32 operands, f64 output, and
/// f64 FMA accumulation (every partial product is `fma(a64, b64, acc)` where
/// `a64`/`b64` are the exact promotions of the stored f32 values).
///
/// The `Avx2` and `Scalar` kernels are bitwise identical here too: the
/// scalar twin folds with [`f64::mul_add`], which computes exactly what the
/// `vfmadd` instruction does.
pub fn gemm_mixed(
    alpha: f64,
    a: &MatF32,
    ta: Transpose,
    b: &MatF32,
    tb: Transpose,
    beta: f64,
    c: &mut Mat,
) {
    let (m, ka) = match ta {
        Transpose::No => (a.nrows, a.ncols),
        Transpose::Yes => (a.ncols, a.nrows),
    };
    let (kb, n) = match tb {
        Transpose::No => (b.nrows, b.ncols),
        Transpose::Yes => (b.ncols, b.nrows),
    };
    assert_eq!(ka, kb, "inner dimensions must agree");
    assert_eq!(c.shape(), (m, n), "output shape mismatch");
    let k = ka;
    if m == 0 || n == 0 {
        return;
    }
    obskit::record_gemm_shape(m, n, k);
    if k == 0 || alpha == 0.0 {
        scale_slice(c.as_mut_slice(), beta);
        return;
    }

    let av = View32 { data: &a.data, nrows: a.nrows, trans: ta };
    let bv = View32 { data: &b.data, nrows: b.nrows, trans: tb };
    if 2 * m * n * k < SMALL_FLOPS || m < MR {
        obskit::record_kernel_dispatch("gemm_mixed.small");
        mixed_small(alpha, &av, &bv, beta, c.as_mut_slice(), m, n, k);
        return;
    }
    let kernel = simd::active_kernel();
    obskit::record_kernel_dispatch(match kernel {
        Kernel::Avx2 => "gemm_mixed.strips.avx2",
        Kernel::Scalar => "gemm_mixed.strips.scalar",
    });
    mixed_strips(kernel, alpha, &av, &bv, beta, c.as_mut_slice(), m, n, k);
}

/// `s *= beta` with the BLAS convention that `beta == 0` overwrites NaNs.
fn scale_slice(s: &mut [f64], beta: f64) {
    if beta == 0.0 {
        s.fill(0.0);
    } else if beta != 1.0 {
        for v in s.iter_mut() {
            *v *= beta;
        }
    }
}

/// Serial fallback: one f64 `mul_add` chain per output element — the same
/// per-element fold as the strip tiles, minus the packing.
#[allow(clippy::too_many_arguments)]
fn mixed_small(
    alpha: f64,
    av: &View32,
    bv: &View32,
    beta: f64,
    c: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
) {
    for j in 0..n {
        for i in 0..m {
            let mut acc = 0.0f64;
            for l in 0..k {
                acc = (av.get(i, l) as f64).mul_add(bv.get(l, j) as f64, acc);
            }
            let t = alpha * acc;
            let cv = &mut c[i + j * m];
            *cv = if beta == 0.0 { t } else { beta * *cv + t };
        }
    }
}

/// Raw pointer into C, shareable across Rayon workers writing disjoint rows.
#[derive(Clone, Copy)]
struct CPtr(*mut f64);
unsafe impl Send for CPtr {}
unsafe impl Sync for CPtr {}

/// Strip path: pack op(A) once into MR-row f32 strips over the full k,
/// stage op(B) as one `k × n` f32 buffer, and drive the FMA dot tile over
/// (strip × ≤MR-column-group) pairs, strips in parallel.
#[allow(clippy::too_many_arguments)]
fn mixed_strips(
    kernel: Kernel,
    alpha: f64,
    av: &View32,
    bv: &View32,
    beta: f64,
    c: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
) {
    let strips = m.div_ceil(MR);
    // Reuse pack scratch across calls: a fresh `vec![0.0; ..]` costs a
    // page-zeroing pass over megabytes per Hamiltonian apply, which dominated
    // this memory-bound path. Partial strips zero their own padding below.
    let (mut apack, mut bpack) = MIXED_SCRATCH.take();
    let a_need = strips * MR * k;
    if apack.len() < a_need {
        apack.resize(a_need, 0.0);
    }
    let b_need = k * n;
    if bpack.len() < b_need {
        bpack.resize(b_need, 0.0);
    }
    apack[..a_need]
        .par_chunks_mut(MR * k)
        .enumerate()
        .for_each(|(s, buf)| pack_strip(av, s * MR, m, k, buf));
    for j in 0..n {
        for (l, d) in bpack[j * k..(j + 1) * k].iter_mut().enumerate() {
            *d = bv.get(l, j);
        }
    }
    drive_strips(kernel, alpha, &apack[..a_need], &bpack[..b_need], beta, c, m, n, k);
    MIXED_SCRATCH.set((apack, bpack));
}

/// Pack one zero-padded `MR × k` strip of `op(A)` starting at row `ib`.
/// Partial strips zero their padding lanes explicitly so the destination does
/// not have to be pre-zeroed (scratch buffers are reused across calls).
fn pack_strip(av: &View32, ib: usize, m: usize, k: usize, buf: &mut [f32]) {
    let mr_eff = MR.min(m - ib);
    if mr_eff < MR {
        for l in 0..k {
            buf[l * MR + mr_eff..(l + 1) * MR].fill(0.0);
        }
    }
    match av.trans {
        Transpose::No => {
            for l in 0..k {
                let col = &av.data[l * av.nrows + ib..l * av.nrows + ib + mr_eff];
                buf[l * MR..l * MR + mr_eff].copy_from_slice(col);
            }
        }
        Transpose::Yes => {
            for l in 0..k {
                let dst = &mut buf[l * MR..l * MR + mr_eff];
                for (i, d) in dst.iter_mut().enumerate() {
                    *d = av.data[(ib + i) * av.nrows + l];
                }
            }
        }
    }
}

/// Sweep the FMA dot tile over (strip × ≤MR-column-group) pairs, strips in
/// parallel. `apack` holds `ceil(m/MR)` packed strips, `bpack` a `k × n`
/// column-major buffer.
#[allow(clippy::too_many_arguments)]
fn drive_strips(
    kernel: Kernel,
    alpha: f64,
    apack: &[f32],
    bpack: &[f32],
    beta: f64,
    c: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
) {
    let strips = m.div_ceil(MR);
    let cptr = CPtr(c.as_mut_ptr());
    (0..strips).into_par_iter().for_each(|s| {
        let it = s * MR;
        let mr_eff = MR.min(m - it);
        let ap = &apack[s * MR * k..(s + 1) * MR * k];
        for g in 0..n.div_ceil(MR) {
            let j0 = g * MR;
            let ng = MR.min(n - j0);
            // SAFETY: strips own disjoint row ranges of every C column.
            unsafe {
                simd::mixed_dot_tile(
                    kernel,
                    k,
                    ap,
                    &bpack[j0 * k..(j0 + ng) * k],
                    ng,
                    mr_eff,
                    alpha,
                    beta,
                    cptr.0.add(j0 * m + it),
                    m,
                );
            }
        }
    });
}

/// [`gemm_mixed`] against a pre-packed `op(A)`:
/// `C = alpha · op(A) · op(B) + beta · C`. Skips the strip pack entirely —
/// only the (small) `op(B)` is staged per call — and folds each output
/// element in exactly the same order as [`gemm_mixed`], so results are
/// bitwise identical to the on-the-fly path.
pub fn gemm_mixed_packed(
    alpha: f64,
    a: &PackedF32,
    b: &MatF32,
    tb: Transpose,
    beta: f64,
    c: &mut Mat,
) {
    let (m, k) = (a.m, a.k);
    let (kb, n) = match tb {
        Transpose::No => (b.nrows, b.ncols),
        Transpose::Yes => (b.ncols, b.nrows),
    };
    assert_eq!(k, kb, "inner dimensions must agree");
    assert_eq!(c.shape(), (m, n), "output shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    obskit::record_gemm_shape(m, n, k);
    if k == 0 || alpha == 0.0 {
        scale_slice(c.as_mut_slice(), beta);
        return;
    }
    let kernel = simd::active_kernel();
    obskit::record_kernel_dispatch(match kernel {
        Kernel::Avx2 => "gemm_mixed.prepacked.avx2",
        Kernel::Scalar => "gemm_mixed.prepacked.scalar",
    });
    let bv = View32 { data: &b.data, nrows: b.nrows, trans: tb };
    let (apack, mut bpack) = MIXED_SCRATCH.take();
    let b_need = k * n;
    if bpack.len() < b_need {
        bpack.resize(b_need, 0.0);
    }
    for j in 0..n {
        for (l, d) in bpack[j * k..(j + 1) * k].iter_mut().enumerate() {
            *d = bv.get(l, j);
        }
    }
    drive_strips(kernel, alpha, &a.data, &bpack[..b_need], beta, c.as_mut_slice(), m, n, k);
    MIXED_SCRATCH.set((apack, bpack));
}

std::thread_local! {
    /// Per-thread `(apack, bpack)` f32 scratch for [`mixed_strips`], taken and
    /// restored around each call (`Cell` take/set keeps re-entrancy safe).
    static MIXED_SCRATCH: std::cell::Cell<(Vec<f32>, Vec<f32>)> =
        const { std::cell::Cell::new((Vec::new(), Vec::new())) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::testutil::{dispatch_lock, with_kernel};

    /// Naive f64 mul_add reference with one accumulator per element.
    fn reference(
        alpha: f64,
        a: &MatF32,
        ta: Transpose,
        b: &MatF32,
        tb: Transpose,
        beta: f64,
        c0: &Mat,
    ) -> Mat {
        let av = View32 { data: &a.data, nrows: a.nrows, trans: ta };
        let bv = View32 { data: &b.data, nrows: b.nrows, trans: tb };
        let (m, n) = c0.shape();
        let k = match ta {
            Transpose::No => a.ncols,
            Transpose::Yes => a.nrows,
        };
        Mat::from_fn(m, n, |i, j| {
            let mut acc = 0.0f64;
            for l in 0..k {
                acc = (av.get(i, l) as f64).mul_add(bv.get(l, j) as f64, acc);
            }
            let t = alpha * acc;
            if beta == 0.0 {
                t
            } else {
                beta * c0[(i, j)] + t
            }
        })
    }

    fn mk32(nrows: usize, ncols: usize, salt: u32) -> MatF32 {
        let mut m = MatF32::zeros(nrows, ncols);
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            *v = (((i as u32).wrapping_mul(2654435761).wrapping_add(salt) % 1000) as f32
                - 500.0)
                * 1e-3;
        }
        m
    }

    #[test]
    fn round_trip_conversion() {
        let m = Mat::from_fn(5, 3, |i, j| i as f64 * 0.5 - j as f64 * 0.25);
        let m32 = MatF32::from_mat(&m);
        // These values are exactly representable in f32.
        assert_eq!(m32.to_mat().max_abs_diff(&m), 0.0);
        assert_eq!(m32.shape(), (5, 3));
        assert_eq!(m32.col(1).len(), 5);
    }

    #[test]
    fn strip_path_matches_reference_all_transposes() {
        let _g = dispatch_lock();
        // m ≥ MR with a partial strip, k over SMALL_FLOPS for n·m·k — forces
        // mixed_strips; n spans multiple column groups.
        let (m, n, k) = (53, 11, 160);
        for (ta, tb) in [
            (Transpose::No, Transpose::No),
            (Transpose::Yes, Transpose::No),
            (Transpose::No, Transpose::Yes),
            (Transpose::Yes, Transpose::Yes),
        ] {
            let a = match ta {
                Transpose::No => mk32(m, k, 1),
                Transpose::Yes => mk32(k, m, 1),
            };
            let b = match tb {
                Transpose::No => mk32(k, n, 2),
                Transpose::Yes => mk32(n, k, 2),
            };
            let c0 = Mat::from_fn(m, n, |i, j| (i * 3 + j) as f64 * 0.01 - 0.5);
            for (alpha, beta) in [(1.0, 0.0), (2.5, -0.75), (1.0, 1.0)] {
                let expect = reference(alpha, &a, ta, &b, tb, beta, &c0);
                let mut c = c0.clone();
                gemm_mixed(alpha, &a, ta, &b, tb, beta, &mut c);
                assert_eq!(
                    c.max_abs_diff(&expect),
                    0.0,
                    "({ta:?},{tb:?}) alpha={alpha} beta={beta}"
                );
            }
        }
    }

    #[test]
    fn small_path_matches_reference() {
        let _g = dispatch_lock();
        let (m, n, k) = (7, 3, 9);
        let a = mk32(m, k, 3);
        let b = mk32(k, n, 4);
        let c0 = Mat::from_fn(m, n, |i, j| (i + j) as f64 * 0.1);
        let expect = reference(1.5, &a, Transpose::No, &b, Transpose::No, 0.5, &c0);
        let mut c = c0.clone();
        gemm_mixed(1.5, &a, Transpose::No, &b, Transpose::No, 0.5, &mut c);
        assert_eq!(c.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn kernels_agree_bitwise() {
        let _g = dispatch_lock();
        if !simd::avx2_available() {
            return;
        }
        let (m, n, k) = (61, 9, 200);
        let a = mk32(m, k, 7);
        let b = mk32(k, n, 8);
        let c0 = Mat::from_fn(m, n, |i, j| ((i * 5 + j * 11) % 13) as f64 * 0.3 - 1.0);
        let run = |kern| {
            with_kernel(kern, || {
                let mut c = c0.clone();
                gemm_mixed(1.25, &a, Transpose::No, &b, Transpose::No, -0.5, &mut c);
                c
            })
        };
        let ca = run(Kernel::Avx2);
        let cs = run(Kernel::Scalar);
        for (x, y) in ca.as_slice().iter().zip(cs.as_slice().iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn prepacked_matches_gemm_mixed_bitwise() {
        let _g = dispatch_lock();
        // Spans the strip path (first case), a partial strip, and a shape the
        // on-the-fly entry would route to `mixed_small` — the pre-packed path
        // must agree bitwise with all of them.
        for (m, n, k) in [(64, 6, 256), (53, 11, 160), (12, 3, 10)] {
            let a = mk32(m, k, 21);
            let b = mk32(k, n, 22);
            let c0 = Mat::from_fn(m, n, |i, j| (i * 7 + j * 3) as f64 * 0.02 - 0.4);
            for (ta, tb) in [
                (Transpose::No, Transpose::No),
                (Transpose::Yes, Transpose::No),
            ] {
                let a = match ta {
                    Transpose::No => a.clone(),
                    Transpose::Yes => {
                        let mut t = MatF32::zeros(k, m);
                        for j in 0..m {
                            for i in 0..k {
                                t.as_mut_slice()[i + j * k] = a.as_slice()[j + i * m];
                            }
                        }
                        t
                    }
                };
                let packed = a.pack(ta);
                assert_eq!(packed.nrows(), m);
                assert_eq!(packed.inner(), k);
                let mut c_ref = c0.clone();
                gemm_mixed(1.5, &a, ta, &b, tb, -0.25, &mut c_ref);
                let mut c = c0.clone();
                gemm_mixed_packed(1.5, &packed, &b, tb, -0.25, &mut c);
                for (x, y) in c.as_slice().iter().zip(c_ref.as_slice().iter()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "({ta:?},{tb:?}) m={m} n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn accuracy_close_to_f64_product() {
        // The f64-accumulated f32 product should sit at f32-rounding error of
        // the exact product, far better than a pure-f32 chain over long k.
        let (m, n, k) = (40, 4, 4096);
        let af = Mat::from_fn(m, k, |i, l| ((i * 31 + l * 7) % 97) as f64 / 97.0 - 0.5);
        let bf = Mat::from_fn(k, n, |l, j| ((l * 13 + j * 5) % 89) as f64 / 89.0 - 0.5);
        let a = MatF32::from_mat(&af);
        let b = MatF32::from_mat(&bf);
        let mut c = Mat::zeros(m, n);
        gemm_mixed(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
        let exact = crate::gemm::matmul(&a.to_mat(), &b.to_mat());
        // Identical inputs (promoted f32), so the only difference is fold
        // order; f64 accumulation keeps that near machine epsilon.
        assert!(c.max_abs_diff(&exact) < 1e-10, "diff {}", c.max_abs_diff(&exact));
    }
}
