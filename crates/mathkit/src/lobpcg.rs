//! Locally Optimal Block Preconditioned Conjugate Gradient (LOBPCG).
//!
//! Matrix-free block eigensolver for the lowest `k` eigenpairs of a symmetric
//! operator, following the robust formulation of Duersch–Shao–Yang–Gu (SIAM
//! J. Sci. Comput. 2018, paper ref. [11]): the search subspace is
//! `S = [X, W, P]` (iterates, preconditioned residuals, implicit CG
//! directions), orthonormalized by Cholesky-QR with a Gram-Schmidt fallback
//! when the Gram matrix degenerates, and the Rayleigh–Ritz problem is solved
//! densely in the 3k-dimensional subspace.
//!
//! Both the ground-state band solver (`pwdft::scf`) and the excited-state
//! Casida solver (`lrtddft`) drive this routine; the paper's "implicit
//! Hamiltonian" optimization enters purely through the `apply` closure.

use crate::eigen::syev;
use crate::gemm::{gemm, gemm_tn, Transpose};
use crate::mat::Mat;
use crate::ortho::{cholesky_qr, modified_gram_schmidt};
use faultkit::{Checkpoint, SolveError};

/// Checkpoint key under which the iterate block `X` is saved each outer
/// iteration (only while a fault plan is armed); recovery ladders resume
/// from it via [`faultkit::checkpoint_take`].
pub const LOBPCG_CHECKPOINT: &str = "lobpcg.x";

/// Options controlling the iteration.
#[derive(Clone, Copy, Debug)]
pub struct LobpcgOptions {
    /// Maximum outer iterations.
    pub max_iter: usize,
    /// Convergence threshold on the max relative residual
    /// `‖A x − λ x‖ / max(1, |λ|)`.
    pub tol: f64,
}

impl Default for LobpcgOptions {
    fn default() -> Self {
        LobpcgOptions { max_iter: 200, tol: 1e-8 }
    }
}

/// Result of a LOBPCG run.
#[derive(Debug)]
pub struct LobpcgResult {
    /// The `k` lowest eigenvalue approximations, ascending.
    pub values: Vec<f64>,
    /// Corresponding Ritz vectors (`n × k`).
    pub vectors: Mat,
    /// Outer iterations used.
    pub iterations: usize,
    /// Max relative residual at exit.
    pub residual: f64,
    /// Whether `tol` was reached.
    pub converged: bool,
}

/// Compute the lowest `k = x0.ncols()` eigenpairs of the symmetric operator
/// `apply` (which maps an `n × m` block to `A · block`), starting from `x0`.
///
/// `precond` maps a residual block to a preconditioned block (the paper uses
/// the diagonal `K⁻¹ = (ε_c − ε_v − θ)⁻¹`, Eq. 17); pass the identity when no
/// preconditioner exists.
///
/// Honest non-convergence (iteration budget exhausted, subspace collapse) is
/// `Ok` with `converged == false` — the caller decides whether to ladder.
/// `Err` means the iteration *broke down*: the initial block was
/// rank-deficient or a non-finite quantity entered the recurrence, so
/// continuing would only propagate garbage.
pub fn lobpcg<FA, FP>(
    apply: FA,
    precond: FP,
    x0: &Mat,
    opts: LobpcgOptions,
) -> Result<LobpcgResult, SolveError>
where
    FA: Fn(&Mat) -> Mat,
    FP: Fn(&Mat, &[f64]) -> Mat,
{
    let n = x0.nrows();
    let k = x0.ncols();
    assert!(k > 0 && n >= k, "need 1 <= k <= n");

    // Orthonormalize the initial block.
    let mut x = match cholesky_qr(x0) {
        Ok(q) => q,
        Err(_) => {
            let q = modified_gram_schmidt(x0, 1e-12);
            if q.ncols() < k {
                return Err(SolveError::Breakdown {
                    stage: "lobpcg",
                    iteration: 0,
                    reason: format!("initial block rank-deficient: {} of {k} columns", q.ncols()),
                });
            }
            q
        }
    };
    let mut ax = apply(&x);
    let mut p: Option<Mat> = None;
    let mut theta = vec![0.0; k];
    let mut best_residual = f64::INFINITY;
    let mut iterations = 0;

    for it in 0..opts.max_iter {
        iterations = it + 1;
        // Rayleigh quotients and residuals R = AX - X Θ.
        let xtax = gemm_tn(&x, &ax);
        for (i, t) in theta.iter_mut().enumerate() {
            *t = xtax[(i, i)];
        }
        let mut r = ax.clone();
        for (j, &th) in theta.iter().enumerate().take(k) {
            let xc = x.col(j).to_vec();
            let rc = r.col_mut(j);
            for (rv, xv) in rc.iter_mut().zip(xc.iter()) {
                *rv -= th * xv;
            }
        }
        let resid = (0..k)
            .map(|j| {
                let rn = r.col(j).iter().map(|v| v * v).sum::<f64>().sqrt();
                rn / theta[j].abs().max(1.0)
            })
            .fold(0.0f64, f64::max);
        if !resid.is_finite() {
            return Err(SolveError::Breakdown {
                stage: "lobpcg",
                iteration: iterations,
                reason: "non-finite residual norm".to_string(),
            });
        }
        // X and Θ are finite here; deposit them as the last-good iterate for
        // checkpoint-resume (no-op unless a fault plan is armed).
        if faultkit::is_armed() {
            faultkit::checkpoint_save(
                LOBPCG_CHECKPOINT,
                Checkpoint { iteration: it, rows: n, cols: k, data: x.as_slice().to_vec() },
            );
        }
        best_residual = best_residual.min(resid);
        obskit::instant(
            obskit::Stage::Diag,
            "lobpcg.iter",
            &[("iter", it as f64), ("resid", resid), ("theta_min", theta.iter().cloned().fold(f64::INFINITY, f64::min))],
        );
        if resid < opts.tol {
            let mut vals = theta.clone();
            sort_ritz(&mut vals, &mut x);
            return Ok(LobpcgResult {
                values: vals,
                vectors: x,
                iterations,
                residual: resid,
                converged: true,
            });
        }

        // Preconditioned residuals (fault hook: the W block is the named
        // poison target for LOBPCG soft-lock campaigns).
        let mut w = precond(&r, &theta);
        faultkit::inject_slice("lobpcg.w", w.as_mut_slice());
        // A preconditioner hitting a zero gap produces NaN/Inf here; the MGS
        // fallback below would silently drop such a column, so surface it as
        // a breakdown instead of degrading the search space undetected.
        if let Some(bad) = w.as_slice().iter().position(|v| !v.is_finite()) {
            return Err(SolveError::Breakdown {
                stage: "lobpcg",
                iteration: iterations,
                reason: format!("non-finite preconditioned residual entry {bad}"),
            });
        }

        // Assemble the trial subspace S = [X, W, P].
        let ncols_s = k + w.ncols() + p.as_ref().map_or(0, |pm| pm.ncols());
        let mut s = Mat::zeros(n, ncols_s);
        for j in 0..k {
            s.col_mut(j).copy_from_slice(x.col(j));
        }
        for j in 0..w.ncols() {
            s.col_mut(k + j).copy_from_slice(w.col(j));
        }
        if let Some(pm) = &p {
            for j in 0..pm.ncols() {
                s.col_mut(k + w.ncols() + j).copy_from_slice(pm.col(j));
            }
        }

        // Orthonormalize S (drop dependent directions if necessary).
        let s_orth = match cholesky_qr(&s) {
            Ok(q) => q,
            Err(_) => modified_gram_schmidt(&s, 1e-10),
        };
        if s_orth.ncols() < k {
            // Subspace collapsed — return the best we have.
            let mut vals = theta.clone();
            sort_ritz(&mut vals, &mut x);
            return Ok(LobpcgResult {
                values: vals,
                vectors: x,
                iterations,
                residual: resid,
                converged: false,
            });
        }

        // Rayleigh–Ritz in the subspace.
        let a_s = apply(&s_orth);
        let mut hs = gemm_tn(&s_orth, &a_s);
        hs.symmetrize();
        // Guard the dense solve: QL on a non-finite matrix would spin, so a
        // poisoned W (or operator output) is surfaced as a breakdown here.
        if let Some(bad) = hs.as_slice().iter().position(|v| !v.is_finite()) {
            return Err(SolveError::Breakdown {
                stage: "lobpcg",
                iteration: iterations,
                reason: format!("non-finite subspace Gram entry {bad}"),
            });
        }
        let eig = syev(&hs);
        // Lowest-k Ritz coefficients.
        let c: Vec<usize> = (0..k).collect();
        let coef = eig.vectors.select_cols(&c);

        // New X = S C, AX = (A S) C.
        let mut x_new = Mat::zeros(n, k);
        gemm(1.0, &s_orth, Transpose::No, &coef, Transpose::No, 0.0, &mut x_new);
        let mut ax_new = Mat::zeros(n, k);
        gemm(1.0, &a_s, Transpose::No, &coef, Transpose::No, 0.0, &mut ax_new);

        // Implicit direction P = S_{W,P part} C (everything except the X block):
        // P = X_new − X · (C_x), with C_x the first-k-row block of C.
        let cx = coef.row_block(0, k);
        let mut p_new = x_new.clone();
        gemm(-1.0, &x, Transpose::No, &cx, Transpose::No, 1.0, &mut p_new);

        x = x_new;
        ax = ax_new;
        p = Some(p_new);
    }

    // Final Rayleigh-Ritz readout.
    let xtax = gemm_tn(&x, &ax);
    for (i, t) in theta.iter_mut().enumerate() {
        *t = xtax[(i, i)];
    }
    let mut vals = theta.clone();
    sort_ritz(&mut vals, &mut x);
    Ok(LobpcgResult {
        values: vals,
        vectors: x,
        iterations,
        residual: best_residual,
        converged: false,
    })
}

/// Result of a mixed-precision refined solve ([`lobpcg_refined`]).
#[derive(Debug)]
pub struct RefinedResult {
    /// The polished (full-precision) result; `iterations` counts both stages.
    pub result: LobpcgResult,
    /// Outer iterations spent in the reduced-precision inner stage.
    pub inner_iterations: usize,
    /// Outer iterations spent in the full-precision polish stage.
    pub polish_iterations: usize,
}

/// Iterative-refinement LOBPCG: run the block iteration with a cheap
/// reduced-precision operator `apply_low` down to `inner_tol`, then polish
/// the resulting Ritz block with the full-precision operator `apply` to
/// `opts.tol`.
///
/// `apply_low` is typically an f32-storage / f64-accumulate version of
/// `apply` (see [`crate::mixed::gemm_mixed`]): its residuals stall around
/// the f32 representation error (~1e-6 relative), which is exactly where
/// `inner_tol` should sit. The polish stage restarts from the inner Ritz
/// vectors, so it usually needs only a handful of full-precision applies to
/// close the gap to `opts.tol` — the end-to-end win is the inner iterations
/// running on half the memory traffic.
///
/// Error contract matches [`lobpcg`]: breakdown in *either* stage is `Err`
/// (callers fall back to their full-f64 recovery ladder); an exhausted
/// iteration budget is `Ok` with `converged == false` on the polished result.
pub fn lobpcg_refined<FL, FA, FP>(
    apply_low: FL,
    apply: FA,
    precond: FP,
    x0: &Mat,
    inner_tol: f64,
    opts: LobpcgOptions,
) -> Result<RefinedResult, SolveError>
where
    FL: Fn(&Mat) -> Mat,
    FA: Fn(&Mat) -> Mat,
    FP: Fn(&Mat, &[f64]) -> Mat,
{
    let inner_opts = LobpcgOptions { max_iter: opts.max_iter, tol: inner_tol.max(opts.tol) };
    // The inner stage is allowed to stop short of inner_tol (f32 residual
    // floor depends on the spectrum); its Ritz block is still the warm start.
    let inner = lobpcg(&apply_low, &precond, x0, inner_opts)?;
    let polish = lobpcg(&apply, &precond, &inner.vectors, opts)?;
    let total = inner.iterations + polish.iterations;
    Ok(RefinedResult {
        inner_iterations: inner.iterations,
        polish_iterations: polish.iterations,
        result: LobpcgResult { iterations: total, ..polish },
    })
}

fn sort_ritz(vals: &mut [f64], vecs: &mut Mat) {
    let k = vals.len();
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| vals[a].partial_cmp(&vals[b]).unwrap());
    let sorted: Vec<f64> = order.iter().map(|&i| vals[i]).collect();
    vals.copy_from_slice(&sorted);
    *vecs = vecs.select_cols(&order);
}

/// Identity "preconditioner" for [`lobpcg`].
pub fn no_precond(r: &Mat, _theta: &[f64]) -> Mat {
    r.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    fn diag_op(d: &[f64]) -> impl Fn(&Mat) -> Mat + '_ {
        move |x: &Mat| {
            let mut y = x.clone();
            for j in 0..y.ncols() {
                for (i, v) in y.col_mut(j).iter_mut().enumerate() {
                    *v *= d[i];
                }
            }
            y
        }
    }

    #[test]
    fn diagonal_operator_lowest_k() {
        let n = 50;
        let d: Vec<f64> = (0..n).map(|i| (i as f64) * 0.7 + 1.0).collect();
        let mut rng = rand::thread_rng();
        let x0 = Mat::random(n, 4, &mut rng);
        let res = lobpcg(diag_op(&d), no_precond, &x0, LobpcgOptions::default()).expect("lobpcg");
        assert!(res.converged, "residual {}", res.residual);
        for (i, v) in res.values.iter().enumerate() {
            assert!((v - d[i]).abs() < 1e-6, "λ_{i} = {v}, want {}", d[i]);
        }
    }

    #[test]
    fn dense_matrix_matches_syev() {
        let mut rng = rand::thread_rng();
        let n = 30;
        let mut a = Mat::random(n, n, &mut rng);
        a.symmetrize();
        let exact = syev(&a);
        let x0 = Mat::random(n, 3, &mut rng);
        let res = lobpcg(
            |x| matmul(&a, x),
            no_precond,
            &x0,
            LobpcgOptions { max_iter: 500, tol: 1e-9 },
        )
        .expect("lobpcg");
        assert!(res.converged);
        for i in 0..3 {
            assert!(
                (res.values[i] - exact.values[i]).abs() < 1e-6,
                "λ_{i}: {} vs {}",
                res.values[i],
                exact.values[i]
            );
        }
    }

    #[test]
    fn preconditioner_accelerates_laplacian() {
        // 1-D Laplacian; Jacobi-shifted preconditioner should converge in
        // fewer iterations than no preconditioner.
        let n = 120;
        let apply = |x: &Mat| {
            let mut y = Mat::zeros(n, x.ncols());
            for j in 0..x.ncols() {
                let xc = x.col(j);
                let yc = y.col_mut(j);
                for i in 0..n {
                    let mut v = 2.0 * xc[i];
                    if i > 0 {
                        v -= xc[i - 1];
                    }
                    if i + 1 < n {
                        v -= xc[i + 1];
                    }
                    yc[i] = v;
                }
            }
            y
        };
        let precond = |r: &Mat, theta: &[f64]| {
            let mut w = r.clone();
            for (j, &th) in theta.iter().enumerate().take(w.ncols()) {
                let shift = (2.0 - th).max(0.1);
                for v in w.col_mut(j) {
                    *v /= shift;
                }
            }
            w
        };
        let mut rng = rand::thread_rng();
        let x0 = Mat::random(n, 2, &mut rng);
        let opts = LobpcgOptions { max_iter: 300, tol: 1e-7 };
        let plain = lobpcg(apply, no_precond, &x0, opts).expect("lobpcg");
        let pre = lobpcg(apply, precond, &x0, opts).expect("lobpcg");
        let exact0 = 2.0 - 2.0 * (std::f64::consts::PI / (n + 1) as f64).cos();
        assert!((pre.values[0] - exact0).abs() < 1e-5);
        assert!(pre.iterations <= plain.iterations);
    }

    #[test]
    fn k_equals_one() {
        let n = 20;
        let d: Vec<f64> = (0..n).map(|i| -(i as f64)).collect();
        let mut rng = rand::thread_rng();
        let x0 = Mat::random(n, 1, &mut rng);
        let res = lobpcg(diag_op(&d), no_precond, &x0, LobpcgOptions::default()).expect("lobpcg");
        assert!((res.values[0] + (n as f64 - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn poisoned_w_breaks_down_with_checkpoint() {
        let n = 40;
        let d: Vec<f64> = (0..n).map(|i| (i as f64) * 0.9 + 1.0).collect();
        let mut rng = rand::thread_rng();
        let x0 = Mat::random(n, 3, &mut rng);
        faultkit::checkpoint_clear();
        let campaign = faultkit::arm(
            faultkit::FaultPlan::new(21).with("lobpcg.w", 2, faultkit::FaultKind::NanPoison),
        );
        let err = lobpcg(diag_op(&d), no_precond, &x0, LobpcgOptions::default())
            .expect_err("poisoned W must surface a breakdown");
        match &err {
            SolveError::Breakdown { stage, iteration, .. } => {
                assert_eq!(*stage, "lobpcg");
                assert!(*iteration >= 3, "poison at occurrence 2 detected at iter {iteration}");
            }
            other => panic!("expected Breakdown, got {other:?}"),
        }
        assert_eq!(campaign.fired(), 1);
        // The last-good iterate was checkpointed; resuming from it (fault
        // consumed) converges to the same eigenvalues.
        let cp = faultkit::checkpoint_take(LOBPCG_CHECKPOINT).expect("checkpoint saved");
        assert_eq!((cp.rows, cp.cols), (n, 3));
        let x1 = Mat::from_vec(cp.rows, cp.cols, cp.data);
        let res = lobpcg(diag_op(&d), no_precond, &x1, LobpcgOptions::default())
            .expect("resume runs clean");
        assert!(res.converged);
        for (i, v) in res.values.iter().enumerate() {
            assert!((v - d[i]).abs() < 1e-6, "resumed λ_{i} = {v}");
        }
    }

    #[test]
    fn refined_solve_reaches_full_precision() {
        // apply_low simulates an f32-storage operator by rounding the
        // diagonal through f32; the polish stage must still land on the
        // exact f64 eigenvalues.
        let n = 60;
        let d: Vec<f64> = (0..n).map(|i| (i as f64) * 0.437 + 1.0 + 1e-8 * (i as f64)).collect();
        let d_low: Vec<f64> = d.iter().map(|&v| v as f32 as f64).collect();
        let mut rng = rand::thread_rng();
        let x0 = Mat::random(n, 4, &mut rng);
        let opts = LobpcgOptions { max_iter: 300, tol: 1e-10 };
        let refined = lobpcg_refined(diag_op(&d_low), diag_op(&d), no_precond, &x0, 1e-5, opts)
            .expect("refined solve");
        assert!(refined.result.converged, "residual {}", refined.result.residual);
        assert_eq!(
            refined.result.iterations,
            refined.inner_iterations + refined.polish_iterations
        );
        for (i, v) in refined.result.values.iter().enumerate() {
            assert!((v - d[i]).abs() < 1e-8, "λ_{i} = {v}, want {}", d[i]);
        }
        // The warm start must make the polish stage cheaper than the inner.
        assert!(refined.polish_iterations <= refined.inner_iterations);
    }

    #[test]
    fn refined_propagates_inner_breakdown() {
        let n = 30;
        let d: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let mut rng = rand::thread_rng();
        let x0 = Mat::random(n, 2, &mut rng);
        faultkit::checkpoint_clear();
        let campaign = faultkit::arm(
            faultkit::FaultPlan::new(7).with("lobpcg.w", 0, faultkit::FaultKind::NanPoison),
        );
        let err = lobpcg_refined(
            diag_op(&d),
            diag_op(&d),
            no_precond,
            &x0,
            1e-5,
            LobpcgOptions::default(),
        )
        .expect_err("poisoned inner stage must surface");
        assert!(matches!(err, SolveError::Breakdown { stage: "lobpcg", .. }));
        assert_eq!(campaign.fired(), 1);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let n = 40;
        let d: Vec<f64> = (0..n).map(|i| (i * i) as f64 * 0.01 + 0.5).collect();
        let mut rng = rand::thread_rng();
        let x0 = Mat::random(n, 5, &mut rng);
        let res = lobpcg(diag_op(&d), no_precond, &x0, LobpcgOptions::default()).expect("lobpcg");
        let g = gemm_tn(&res.vectors, &res.vectors);
        assert!(g.max_abs_diff(&Mat::eye(5)) < 1e-7);
    }
}
