//! Householder QR and QR with column pivoting (QRCP).
//!
//! QRCP is the *traditional* ISDF interpolation-point selector (paper §4.1.1):
//! pivot columns of `Zᵀ` in decreasing residual-norm order; the first `N_μ`
//! pivots are the interpolation points. The paper replaces it with K-Means
//! because QRCP costs `O(N_e³)` and parallelizes poorly — we implement both so
//! the Table 3 comparison can be regenerated.

use crate::gemm::{gemm, Transpose};
use crate::mat::Mat;
use rand::Rng;

/// Plain (unpivoted) Householder QR: returns `(Q, R)` with `A = Q R`,
/// `Q` is `m × min(m,n)` with orthonormal columns, `R` is `min(m,n) × n`.
pub fn qr_householder(a: &Mat) -> (Mat, Mat) {
    let (m, n) = a.shape();
    let k = m.min(n);
    let mut r = a.clone();
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(k);
    for j in 0..k {
        // Householder vector for column j below the diagonal.
        let mut v = vec![0.0; m - j];
        for i in j..m {
            v[i - j] = r[(i, j)];
        }
        let alpha = -v[0].signum() * v.iter().map(|x| x * x).sum::<f64>().sqrt();
        v[0] -= alpha;
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 > 0.0 {
            // Apply H = I - 2 v vᵀ / (vᵀv) to R[j.., j..].
            for c in j..n {
                let mut dot = 0.0;
                for i in j..m {
                    dot += v[i - j] * r[(i, c)];
                }
                let coef = 2.0 * dot / vnorm2;
                for i in j..m {
                    r[(i, c)] -= coef * v[i - j];
                }
            }
        }
        vs.push(v);
    }
    // Build Q by applying the Householder reflectors to I (in reverse).
    let mut q = Mat::zeros(m, k);
    for j in 0..k {
        q[(j, j)] = 1.0;
    }
    for j in (0..k).rev() {
        let v = &vs[j];
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            continue;
        }
        for c in 0..k {
            let mut dot = 0.0;
            for i in j..m {
                dot += v[i - j] * q[(i, c)];
            }
            let coef = 2.0 * dot / vnorm2;
            for i in j..m {
                q[(i, c)] -= coef * v[i - j];
            }
        }
    }
    // Zero out strictly-lower part of R and truncate to k rows.
    let mut r_out = Mat::zeros(k, n);
    for j in 0..n {
        for i in 0..k.min(j + 1) {
            r_out[(i, j)] = r[(i, j)];
        }
    }
    (q, r_out)
}

/// Result of QR with column pivoting.
pub struct Qrcp {
    /// Pivot order: `perm[k]` is the original column index chosen at step `k`.
    pub perm: Vec<usize>,
    /// Diagonal of `R` in pivot order (non-increasing in magnitude).
    pub rdiag: Vec<f64>,
    /// Number of factorization steps performed.
    pub rank: usize,
}

/// Householder QRCP of `a` (LAPACK `dgeqp3`-style with classic column-norm
/// downdates), stopping after `max_steps` pivots or when the next pivot's
/// column norm drops below `tol * (first pivot norm)`.
pub fn qrcp(a: &Mat, max_steps: usize, tol: f64) -> Qrcp {
    let (m, n) = a.shape();
    let kmax = max_steps.min(m).min(n);
    let mut r = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut norms2: Vec<f64> = (0..n).map(|j| r.col(j).iter().map(|x| x * x).sum()).collect();
    let mut rdiag = Vec::with_capacity(kmax);
    let mut first_norm = 0.0f64;

    for j in 0..kmax {
        // Select the remaining column with the largest residual norm.
        let (piv, &pnorm2) = norms2[j..]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, v)| (i + j, v))
            .unwrap();
        let pnorm = pnorm2.max(0.0).sqrt();
        if j == 0 {
            first_norm = pnorm;
        }
        if pnorm <= tol * first_norm {
            return Qrcp { perm, rdiag, rank: j };
        }
        if piv != j {
            // Swap columns j and piv (and bookkeeping).
            for i in 0..m {
                let t = r[(i, j)];
                r[(i, j)] = r[(i, piv)];
                r[(i, piv)] = t;
            }
            perm.swap(j, piv);
            norms2.swap(j, piv);
        }
        // Householder reflector on column j.
        let mut v = vec![0.0; m - j];
        for i in j..m {
            v[i - j] = r[(i, j)];
        }
        let alpha = -v[0].signum() * v.iter().map(|x| x * x).sum::<f64>().sqrt();
        v[0] -= alpha;
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 > 0.0 {
            for c in j..n {
                let mut dot = 0.0;
                for i in j..m {
                    dot += v[i - j] * r[(i, c)];
                }
                let coef = 2.0 * dot / vnorm2;
                for i in j..m {
                    r[(i, c)] -= coef * v[i - j];
                }
            }
        }
        rdiag.push(r[(j, j)].abs());
        // Downdate column norms (with recompute guard against cancellation).
        for c in (j + 1)..n {
            let t = r[(j, c)];
            norms2[c] -= t * t;
            if norms2[c] < 1e-12 * first_norm * first_norm {
                norms2[c] = r.col(c)[(j + 1)..m.max(j + 1)]
                    .iter()
                    .map(|x| x * x)
                    .sum::<f64>()
                    .max(0.0);
                // col(c) slice indexing above covers rows j+1..m
            }
        }
    }
    Qrcp { perm, rdiag, rank: kmax }
}

/// Select `n_mu` interpolation rows of the tall matrix `z` (`N_r × N_cv`)
/// by running QRCP on `zᵀ` — the paper's traditional ISDF point selector.
/// Returns sorted row indices.
pub fn qrcp_select(z: &Mat, n_mu: usize) -> Vec<usize> {
    let zt = z.transpose();
    let fac = qrcp(&zt, n_mu, 0.0);
    let mut pts: Vec<usize> = fac.perm[..fac.rank].to_vec();
    pts.sort_unstable();
    pts
}

/// Randomized QRCP point selection (paper §4.1.1 "randomized sampling QRCP"):
/// sketch `zᵀ` with a Gaussian matrix `G` (`p × N_cv`, `p = n_mu +
/// oversample`), then run QRCP on the small `p × N_r` product.
pub fn randomized_qrcp_select(
    z: &Mat,
    n_mu: usize,
    oversample: usize,
    rng: &mut impl Rng,
) -> Vec<usize> {
    let (nr, ncv) = z.shape();
    let p = (n_mu + oversample).min(nr);
    // Y = Gᵀ? We want sketch rows: Y (p × nr) = G (p × ncv) · zᵀ (ncv × nr).
    let mut g = Mat::zeros(ncv, p);
    for x in g.as_mut_slice() {
        // Box-Muller-free normal via sum of uniforms is too crude; use rand's
        // Gaussian through two uniforms (Box-Muller).
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        *x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
    // Y = (z · G)ᵀ  -> compute W = zᵀ·.. cheaper: Yᵀ = z·G is nr × p, then QRCP on Yᵀᵀ = Y.
    let mut yt = Mat::zeros(nr, p);
    gemm(1.0, z, Transpose::No, &g, Transpose::No, 0.0, &mut yt);
    let y = yt.transpose(); // p × nr
    let fac = qrcp(&y, n_mu, 0.0);
    let mut pts: Vec<usize> = fac.perm[..fac.rank].to_vec();
    pts.sort_unstable();
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm_tn, matmul};

    #[test]
    fn qr_reconstructs() {
        let mut rng = rand::thread_rng();
        let a = Mat::random(12, 7, &mut rng);
        let (q, r) = qr_householder(&a);
        assert_eq!(q.shape(), (12, 7));
        assert_eq!(r.shape(), (7, 7));
        assert!(matmul(&q, &r).max_abs_diff(&a) < 1e-10);
        assert!(gemm_tn(&q, &q).max_abs_diff(&Mat::eye(7)) < 1e-10);
    }

    #[test]
    fn qr_wide_matrix() {
        let mut rng = rand::thread_rng();
        let a = Mat::random(5, 9, &mut rng);
        let (q, r) = qr_householder(&a);
        assert_eq!(q.shape(), (5, 5));
        assert_eq!(r.shape(), (5, 9));
        assert!(matmul(&q, &r).max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn r_is_upper_triangular() {
        let mut rng = rand::thread_rng();
        let a = Mat::random(8, 8, &mut rng);
        let (_q, r) = qr_householder(&a);
        for j in 0..8 {
            for i in (j + 1)..8 {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn qrcp_pivots_decreasing() {
        let mut rng = rand::thread_rng();
        let a = Mat::random(20, 15, &mut rng);
        let fac = qrcp(&a, 15, 0.0);
        for w in fac.rdiag.windows(2) {
            assert!(w[0] >= w[1] - 1e-10, "rdiag not non-increasing: {:?}", fac.rdiag);
        }
        assert_eq!(fac.rank, 15);
    }

    #[test]
    fn qrcp_finds_dominant_columns() {
        // Columns 3 and 7 are 100x larger: they must be the first two pivots.
        let mut rng = rand::thread_rng();
        let mut a = Mat::random(10, 9, &mut rng);
        for i in 0..10 {
            a[(i, 3)] *= 100.0;
            a[(i, 7)] *= 100.0;
        }
        let fac = qrcp(&a, 2, 0.0);
        let mut first_two = fac.perm[..2].to_vec();
        first_two.sort_unstable();
        assert_eq!(first_two, vec![3, 7]);
    }

    #[test]
    fn qrcp_rank_truncation_on_low_rank_input() {
        // Rank-2 matrix: QRCP with a tolerance must stop at 2 steps.
        let u = Mat::from_fn(12, 2, |i, j| if j == 0 { (i + 1) as f64 / 10.0 } else { ((i * i) as f64).sin() });
        let v = Mat::from_fn(2, 9, |i, j| ((i + 2) as f64).powi(j as i32 % 3 + 1) / 5.0);
        let a = matmul(&u, &v);
        let fac = qrcp(&a, 9, 1e-8);
        assert!(fac.rank <= 3, "rank {} too high for rank-2 input", fac.rank);
        assert!(fac.rank >= 2);
    }

    #[test]
    fn qrcp_select_rows_of_low_rank_z() {
        // z = outer product structure: N_r x N_cv with rank 3; any 3 selected
        // rows must span the row space well.
        let mut rng = rand::thread_rng();
        let u = Mat::random(30, 3, &mut rng);
        let v = Mat::random(3, 8, &mut rng);
        let z = matmul(&u, &v);
        let pts = qrcp_select(&z, 3);
        assert_eq!(pts.len(), 3);
        for w in pts.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(pts.iter().all(|&p| p < 30));
    }

    #[test]
    fn randomized_qrcp_matches_plain_on_spiky_input() {
        // With hugely dominant rows, both selectors must find them.
        let mut rng = rand::thread_rng();
        let mut z = Mat::random(40, 6, &mut rng);
        for j in 0..6 {
            z[(5, j)] *= 500.0;
            z[(17, j)] *= 300.0;
        }
        let plain = qrcp_select(&z, 2);
        let randomized = randomized_qrcp_select(&z, 2, 4, &mut rng);
        assert_eq!(plain, vec![5, 17]);
        assert_eq!(randomized, vec![5, 17]);
    }
}
